#include "dist/coordinator.h"

#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <optional>
#include <utility>

#include "cost/partitioning.h"
#include "dist/wire_messages.h"
#include "mip/frontier.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "solver/formulation.h"
#include "solver/latency.h"
#include "solver/sa_solver.h"
#include "util/stopwatch.h"
#include "util/string_util.h"
#include "workload/instance_io.h"

namespace vpart {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

std::string SelfExePath() {
  char buffer[4096];
  const ssize_t n = ::readlink("/proc/self/exe", buffer, sizeof(buffer) - 1);
  if (n <= 0) return "";
  buffer[n] = '\0';
  return std::string(buffer);
}

long LongField(const JsonValue& message, const char* key, long fallback) {
  const JsonValue* value = message.Find(key);
  return (value != nullptr && value->is_number())
             ? static_cast<long>(value->as_number())
             : fallback;
}

Counter& RequeuesTotal() {
  static Counter& counter = MetricsRegistry::Global().GetCounter(
      "vpart_dist_requeues_total",
      "Work units restored from dead or silent workers");
  return counter;
}

Counter& BroadcastsTotal() {
  static Counter& counter = MetricsRegistry::Global().GetCounter(
      "vpart_dist_incumbent_broadcasts_total",
      "Incumbent objective broadcasts fanned out to workers");
  return counter;
}

Counter& SessionsTotal() {
  static Counter& counter = MetricsRegistry::Global().GetCounter(
      "vpart_dist_sessions_total", "Distributed solve sessions run");
  return counter;
}

}  // namespace

/// Bridges the registry's Solver interface onto the coordinator so subtree
/// solves ride the standard Advise() orchestration.
class DistSolverAdapter : public Solver {
 public:
  explicit DistSolverAdapter(DistCoordinator* coordinator)
      : coordinator_(coordinator) {}
  StatusOr<SolverRun> Solve(const CostCoefficients& cost_model,
                            const AdviseRequest& request,
                            const SolveContext& ctx) override {
    return coordinator_->SolveSubtrees(cost_model, request, ctx);
  }

 private:
  DistCoordinator* coordinator_;
};

StatusOr<std::unique_ptr<DistCoordinator>> DistCoordinator::Start(
    const Options& options) {
  std::unique_ptr<DistCoordinator> coordinator(new DistCoordinator());
  Status started = coordinator->StartImpl(options);
  if (!started.ok()) {
    coordinator->Shutdown();
    return started;
  }
  return coordinator;
}

Status DistCoordinator::StartImpl(const Options& options) {
  options_ = options;
  if (options_.num_workers < 1) {
    return InvalidArgumentError("dist coordinator: num_workers must be >= 1");
  }
  socket_path_ =
      options_.socket_path.empty()
          ? StrFormat("/tmp/vpart-dist-%d.sock", static_cast<int>(::getpid()))
          : options_.socket_path;
  StatusOr<std::unique_ptr<TransportListener>> listener =
      ListenUds(socket_path_);
  VPART_RETURN_IF_ERROR(listener.status());
  listener_ = std::move(*listener);
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  monitor_thread_ = std::thread([this] { MonitorLoop(); });

  if (options_.spawn_workers) {
    for (int i = 0; i < options_.num_workers; ++i) {
      VPART_RETURN_IF_ERROR(SpawnWorker());
    }
  }
  // Externally attached workers (spawn_workers false) can only connect
  // after Start() returns, so only spawned fleets are awaited here; the
  // caller gates on WaitForWorkers() once its workers are up.
  if (options_.spawn_workers &&
      !WaitForWorkers(options_.num_workers,
                      options_.startup_timeout_seconds)) {
    return DeadlineExceededError(StrFormat(
        "dist coordinator: %d workers did not connect to %s within %.0fs",
        options_.num_workers, socket_path_.c_str(),
        options_.startup_timeout_seconds));
  }

  SolverCapabilities capabilities;
  capabilities.exact = true;
  capabilities.latency_penalty = true;
  capabilities.multi_threaded = true;
  capabilities.anytime = true;
  // The proven objective value is worker-count-independent; which of
  // several equal-cost optima wins the incumbent race is not.
  capabilities.deterministic = false;
  VPART_RETURN_IF_ERROR(SolverRegistry::Global().Register(
      kSolverDist, capabilities, [this]() -> std::unique_ptr<Solver> {
        return std::make_unique<DistSolverAdapter>(this);
      }));
  solver_registered_ = true;
  return Status::Ok();
}

DistCoordinator::~DistCoordinator() { Shutdown(); }

Status DistCoordinator::SpawnWorker() {
  const std::string binary = options_.worker_binary.empty()
                                 ? SelfExePath()
                                 : options_.worker_binary;
  if (binary.empty()) {
    return InternalError("dist coordinator: cannot resolve worker binary");
  }
  const pid_t pid = ::fork();
  if (pid < 0) return InternalError("dist coordinator: fork failed");
  if (pid == 0) {
    ::execl(binary.c_str(), binary.c_str(), "--worker", socket_path_.c_str(),
            static_cast<char*>(nullptr));
    _exit(127);
  }
  std::lock_guard<std::mutex> lock(mu_);
  spawned_pids_.push_back(pid);
  return Status::Ok();
}

void DistCoordinator::AcceptLoop() {
  while (true) {
    StatusOr<std::unique_ptr<Transport>> accepted = listener_->Accept();
    if (!accepted.ok()) return;  // listener closed
    std::lock_guard<std::mutex> lock(mu_);
    if (shutting_down_) {
      (*accepted)->Close();
      return;
    }
    auto worker = std::make_unique<WorkerState>();
    worker->id = static_cast<int>(workers_.size());
    worker->transport = std::move(*accepted);
    worker->last_seen = std::chrono::steady_clock::now();
    WorkerState* raw = worker.get();
    workers_.push_back(std::move(worker));
    raw->reader = std::thread([this, raw] { ReaderLoop(raw); });
  }
}

void DistCoordinator::ReaderLoop(WorkerState* worker) {
  while (true) {
    StatusOr<JsonValue> message = worker->transport->Receive();
    if (!message.ok()) break;
    const std::string type = DistMessageType(*message);
    std::lock_guard<std::mutex> lock(mu_);
    worker->last_seen = std::chrono::steady_clock::now();
    if (type == kDistMsgHello) {
      worker->ready = true;
      worker->reported_pid =
          static_cast<pid_t>(LongField(*message, "pid", -1));
      workers_cv_.notify_all();
      PumpLocked();
    } else if (type == kDistMsgHeartbeat) {
      // The last_seen refresh above is the whole point.
    } else if (type == kDistMsgIncumbent) {
      HandleIncumbentLocked(worker, *message);
    } else if (type == kDistMsgUnitResult || type == kDistMsgUnitError) {
      HandleResultLocked(worker, type, *message);
    }
  }
  std::lock_guard<std::mutex> lock(mu_);
  HandleWorkerDeathLocked(worker);
}

void DistCoordinator::MonitorLoop() {
  std::unique_lock<std::mutex> lock(mu_);
  const double timeout = std::max(0.5, options_.heartbeat_timeout_seconds);
  while (!monitor_cv_.wait_for(
      lock, std::chrono::duration<double>(timeout / 4),
      [this] { return shutting_down_; })) {
    const auto now = std::chrono::steady_clock::now();
    for (auto& worker : workers_) {
      if (!worker->alive) continue;
      const double silent =
          std::chrono::duration<double>(now - worker->last_seen).count();
      // Abort wakes the reader, whose exit path runs the one shared death
      // protocol (requeue + pump) for hung and dead workers alike.
      if (silent > timeout) worker->transport->Abort();
    }
  }
}

int DistCoordinator::UsableWorkersLocked() const {
  int usable = 0;
  for (const auto& worker : workers_) {
    if (worker->alive && worker->ready) ++usable;
  }
  return usable;
}

int DistCoordinator::usable_workers() const {
  std::lock_guard<std::mutex> lock(mu_);
  return UsableWorkersLocked();
}

bool DistCoordinator::WaitForWorkers(int n, double timeout_seconds) {
  std::unique_lock<std::mutex> lock(mu_);
  return workers_cv_.wait_for(
      lock, std::chrono::duration<double>(timeout_seconds),
      [this, n] { return shutting_down_ || UsableWorkersLocked() >= n; }) &&
         UsableWorkersLocked() >= n;
}

std::vector<pid_t> DistCoordinator::worker_pids() const {
  std::lock_guard<std::mutex> lock(mu_);
  return spawned_pids_;
}

long DistCoordinator::requeued_total() const {
  std::lock_guard<std::mutex> lock(mu_);
  return requeued_total_;
}

void DistCoordinator::PumpLocked() {
  if (session_ == nullptr || !session_->active) return;
  for (auto& worker_ptr : workers_) {
    WorkerState* worker = worker_ptr.get();
    if (!worker->alive || !worker->ready) continue;
    if (worker->job_serial != session_->serial) {
      if (!worker->transport->Send(session_->job).ok()) continue;
      worker->job_serial = session_->serial;
      worker->current_unit = -1;
      // A late joiner missed earlier broadcasts; hand it the current best.
      if (session_->subtree && session_->have_best) {
        JsonValue incumbent = MakeDistMessage(kDistMsgIncumbent);
        incumbent.Set("session", session_->serial);
        incumbent.Set("objective", session_->best_objective);
        (void)worker->transport->Send(incumbent);
      }
    }
    if (worker->current_unit >= 0) continue;
    std::optional<long> id = session_->ledger.Acquire(worker->id);
    if (!id.has_value()) continue;
    worker->current_unit = *id;
    (void)worker->transport->Send(session_->payloads[*id]);
  }
}

void DistCoordinator::BroadcastIncumbentLocked(const WorkerState* from) {
  if (session_ == nullptr || !session_->active || !session_->have_best) {
    return;
  }
  for (auto& worker : workers_) {
    if (worker.get() == from || !worker->alive || !worker->ready) continue;
    if (worker->job_serial != session_->serial) continue;
    JsonValue incumbent = MakeDistMessage(kDistMsgIncumbent);
    incumbent.Set("session", session_->serial);
    incumbent.Set("objective", session_->best_objective);
    (void)worker->transport->Send(incumbent);
    BroadcastsTotal().Increment();
  }
}

void DistCoordinator::HandleIncumbentLocked(WorkerState* worker,
                                            const JsonValue& message) {
  if (session_ == nullptr || !session_->active || !session_->subtree) return;
  if (LongField(message, "session", -1) != session_->serial) return;
  const JsonValue* objective = message.Find("objective");
  const JsonValue* values = message.Find("values");
  if (objective == nullptr || !objective->is_number() || values == nullptr ||
      !values->is_array()) {
    return;
  }
  const double candidate = objective->as_number();
  if (session_->have_best && candidate >= session_->best_objective) return;
  std::vector<double> decoded;
  decoded.reserve(values->as_array().size());
  for (const JsonValue& v : values->as_array()) {
    if (!v.is_number()) return;
    decoded.push_back(v.as_number());
  }
  session_->have_best = true;
  session_->best_objective = candidate;
  session_->best_values = std::move(decoded);
  BroadcastIncumbentLocked(worker);
}

void DistCoordinator::HandleResultLocked(WorkerState* worker,
                                         const std::string& type,
                                         const JsonValue& message) {
  const long id = LongField(message, "id", -1);
  if (worker->current_unit == id) worker->current_unit = -1;
  if (session_ == nullptr || !session_->active ||
      LongField(message, "session", -1) != session_->serial) {
    PumpLocked();  // stale result from an earlier session; worker is idle
    return;
  }
  if (!session_->ledger.Complete(worker->id, id)) {
    // The unit was requeued to someone else while this worker was presumed
    // dead; both answers are equivalent, first completion wins.
    PumpLocked();
    return;
  }
  if (type == kDistMsgUnitError) {
    const JsonValue* error = message.Find("error");
    session_->error = InternalError(StrFormat(
        "dist unit %ld failed: %s", id,
        (error != nullptr && error->is_string()) ? error->as_string().c_str()
                                                 : "unknown error"));
    session_->ledger.Cancel();
    return;
  }
  session_->results[id] = message;
  PumpLocked();
}

void DistCoordinator::HandleWorkerDeathLocked(WorkerState* worker) {
  if (!worker->alive) return;
  worker->alive = false;
  worker->ready = false;
  worker->current_unit = -1;
  workers_cv_.notify_all();
  if (session_ == nullptr || !session_->active) return;
  const std::vector<long> restored = session_->ledger.Requeue(worker->id);
  requeued_total_ += static_cast<long>(restored.size());
  RequeuesTotal().Add(static_cast<long>(restored.size()));
  if (UsableWorkersLocked() == 0 && !session_->ledger.AllDone()) {
    session_->error = InternalError(
        "dist coordinator: every worker lost with units outstanding");
    session_->ledger.Cancel();
    return;
  }
  PumpLocked();
}

DistCoordinator::SessionOutcome DistCoordinator::RunSession(
    bool subtree, JsonValue job, std::map<long, JsonValue> payloads,
    bool have_best, double best_objective, std::vector<double> best_values,
    const CancellationToken& token) {
  Session* session = nullptr;
  {
    std::lock_guard<std::mutex> lock(mu_);
    SessionsTotal().Increment();
    session_ = std::make_unique<Session>();
    session = session_.get();
    session->serial = ++session_serial_;
    session->subtree = subtree;
    job.Set("session", session->serial);
    session->job = std::move(job);
    for (auto& entry : payloads) {
      entry.second.Set("session", session->serial);
      session->ledger.Add(entry.first);
    }
    session->payloads = std::move(payloads);
    session->have_best = have_best;
    session->best_objective = best_objective;
    session->best_values = std::move(best_values);
    PumpLocked();
    if (session->have_best) BroadcastIncumbentLocked(nullptr);
  }

  while (!session->ledger.WaitFor(0.2)) {
    if (token.cancelled()) break;  // deadline: take what finished
    std::lock_guard<std::mutex> lock(mu_);
    if (!session->error.ok() || shutting_down_) break;
  }

  SessionOutcome outcome;
  {
    std::lock_guard<std::mutex> lock(mu_);
    session->active = false;
    outcome.results = std::move(session->results);
    outcome.error = session->error;
    outcome.completed = session->ledger.AllDone();
    outcome.have_best = session->have_best;
    outcome.best_objective = session->best_objective;
    outcome.best_values = std::move(session->best_values);
    session_.reset();
  }
  return outcome;
}

StatusOr<AdviseResponse> DistCoordinator::AdviseDistributed(
    const Instance& instance, const CliRequest& cli) {
  std::lock_guard<std::mutex> serialize(advise_mu_);
  if (usable_workers() == 0) {
    return FailedPreconditionError(
        "dist coordinator: no workers attached (WaitForWorkers first)");
  }
  frontier_target_ = cli.dist.frontier_units;
  AdviseRequest request = cli.request;
  request.solver = kSolverDist;
  return Advise(instance, request);
}

StatusOr<SolverRun> DistCoordinator::SolveSubtrees(
    const CostCoefficients& cost_model, const AdviseRequest& request,
    const SolveContext& ctx) {
  Span span("dist_solve", "dist");
  FormulationOptions fopts;
  fopts.num_sites = request.num_sites;
  fopts.allow_replication = request.allow_replication;
  IlpFormulation formulation = BuildIlpFormulation(cost_model, fopts);
  const bool latency = request.latency_penalty > 0;
  if (latency) {
    AddLatencyToFormulation(cost_model, request.latency_penalty, formulation);
  }

  // Warm incumbent, mirroring the ilp adapter: a cached cross-request seed
  // replaces the internal SA warm start; both are skipped under latency
  // (the ψ columns change the model shape EncodePartitioning covers).
  const Partitioning* seed_incumbent = nullptr;
  SaResult warm;
  bool have_warm = false;
  std::vector<double> initial;
  if (!latency) {
    if (request.warm.incumbent != nullptr &&
        ValidatePartitioning(cost_model.instance(), *request.warm.incumbent,
                             !request.allow_replication)
            .ok()) {
      seed_incumbent = request.warm.incumbent.get();
      initial = formulation.EncodePartitioning(cost_model, *seed_incumbent);
    } else if (request.ilp.warm_start_seconds > 0) {
      SaOptions warm_sa;
      warm_sa.seed = request.seed;
      warm_sa.allow_replication = request.allow_replication;
      warm_sa.time_limit_seconds =
          request.time_limit_seconds > 0
              ? std::min(request.ilp.warm_start_seconds,
                         request.time_limit_seconds / 4)
              : request.ilp.warm_start_seconds;
      warm_sa.cancel_flag = ctx.token.flag();
      Span warm_span("dist_warm_start", "dist");
      warm = SolveWithSa(cost_model, request.num_sites, warm_sa);
      have_warm = true;
      initial = formulation.EncodePartitioning(cost_model, warm.partitioning);
    }
  }

  MipOptions expand;
  expand.time_limit_seconds = ctx.token.SolverBudgetSeconds();
  expand.relative_gap = request.ilp.mip_gap;
  expand.lp_options.audit_level = request.ilp.lp_audit;
  expand.enable_dive = request.ilp.enable_dive;
  expand.cancel_flag = ctx.token.flag();
  if (!latency) expand.root_basis = request.warm.root_basis;
  if (!initial.empty()) expand.initial_solution = &initial;
  int target = frontier_target_;
  if (target <= 0) target = 4 * std::max(1, usable_workers());
  FrontierExpansion expansion =
      ExpandFrontier(formulation.model, expand, target);
  span.AddArg("frontier_units", static_cast<long>(expansion.units.size()));

  MipResult& root = expansion.root;
  long nodes = root.nodes;
  LpSolveStats stats = root.lp_stats;
  bool all_exhausted = expansion.clean;
  bool any_external = root.pruned_by_external_bound;
  bool have_best = root.has_incumbent();
  double best_objective = have_best ? root.objective : kInf;
  std::vector<double> best_values =
      have_best ? root.values : std::vector<double>();
  bool session_completed = true;
  double bound = kInf;      // min over open-subtree bounds
  bool bound_valid = true;  // every contributing bound was finite

  if (expansion.units.empty()) {
    all_exhausted = expansion.clean && root.search_exhausted;
    if (std::isfinite(root.best_bound)) {
      bound = std::min(bound, root.best_bound);
    }
  } else {
    CliRequest job_cli;
    job_cli.instance_text = WriteInstanceText(cost_model.instance());
    job_cli.request = request;
    // Workers never dispatch by solver name in subtree mode, but the job
    // document revalidates through ParseCliRequest, whose registry check
    // must not see this coordinator-private name.
    job_cli.request.solver = kSolverIlp;
    job_cli.request.time_limit_seconds = ctx.token.SolverBudgetSeconds();
    JsonValue job = MakeDistMessage(kDistMsgJob);
    job.Set("mode", "subtrees");
    job.Set("request", CliRequestToJson(job_cli));

    std::map<long, JsonValue> payloads;
    std::map<long, double> shipped_bounds;
    for (const FrontierUnit& unit : expansion.units) {
      JsonValue payload = MakeDistMessage(kDistMsgUnit);
      payload.Set("id", unit.id);
      if (std::isfinite(unit.bound)) payload.Set("bound", unit.bound);
      payload.Set("fixings", EncodeFixings(unit.fixings));
      payload.Set("basis", EncodeBasis(unit.basis));
      payloads[unit.id] = std::move(payload);
      shipped_bounds[unit.id] = unit.bound;
    }

    SessionOutcome outcome =
        RunSession(/*subtree=*/true, std::move(job), std::move(payloads),
                   have_best, best_objective, best_values, ctx.token);
    if (!outcome.error.ok()) return outcome.error;
    session_completed = outcome.completed;
    if (outcome.have_best &&
        (!have_best || outcome.best_objective < best_objective)) {
      have_best = true;
      best_objective = outcome.best_objective;
      best_values = std::move(outcome.best_values);
    }

    for (const auto& entry : shipped_bounds) {
      const long id = entry.first;
      const double shipped_bound = entry.second;
      auto found = outcome.results.find(id);
      if (found == outcome.results.end()) {
        // Never finished (deadline/cancel): the subtree stays open and its
        // shipped parent bound still bounds it.
        all_exhausted = false;
        if (std::isfinite(shipped_bound)) {
          bound = std::min(bound, shipped_bound);
        } else {
          bound_valid = false;
        }
        continue;
      }
      const JsonValue* mip = found->second.Find("mip");
      StatusOr<MipResult> decoded =
          DecodeMipResult(mip != nullptr ? *mip : JsonValue());
      VPART_RETURN_IF_ERROR(decoded.status());
      nodes += decoded->nodes;
      stats.Add(decoded->lp_stats);
      all_exhausted = all_exhausted && decoded->search_exhausted;
      any_external = any_external || decoded->pruned_by_external_bound;
      if (decoded->has_incumbent() &&
          (!have_best || decoded->objective < best_objective)) {
        have_best = true;
        best_objective = decoded->objective;
        best_values = decoded->values;
      }
      // kInfeasible marks an empty (or globally dominated) subtree: bound
      // +inf, nothing to fold into the global minimum.
      if (decoded->status == MipStatus::kInfeasible) continue;
      if (std::isfinite(decoded->best_bound)) {
        bound = std::min(bound, decoded->best_bound);
      } else if (!decoded->search_exhausted) {
        if (std::isfinite(shipped_bound)) {
          bound = std::min(bound, shipped_bound);
        } else {
          bound_valid = false;
        }
      }
    }
  }

  SolverRun run;
  run.bnb_nodes = nodes;
  run.lp_stats = stats;
  run.pruned_by_external_bound = any_external;
  run.search_exhausted = all_exhausted && session_completed;
  run.root_basis = root.root_basis;
  const bool proven = run.search_exhausted && have_best;
  if (bound < kInf && bound_valid) {
    run.best_bound = proven ? std::min(bound, best_objective) : bound;
  } else if (proven) {
    // Every subtree closed without a finite bound (infeasible or pruned by
    // the global incumbent): the incumbent is its own proof.
    run.best_bound = best_objective;
  } else {
    run.best_bound = root.best_bound;
  }

  if (have_best) {
    run.partitioning = formulation.ExtractPartitioning(best_values);
    run.algorithm =
        expansion.units.empty()
            ? "dist(serial)"
            : StrFormat("dist[%d]", static_cast<int>(expansion.units.size()));
    run.proven_optimal = proven;
  } else if (seed_incumbent != nullptr) {
    run.partitioning = *seed_incumbent;
    run.algorithm = "dist(timeout)->seed";
  } else if (have_warm) {
    run.partitioning = std::move(warm.partitioning);
    run.algorithm = "dist(timeout)->sa";
  } else {
    return DeadlineExceededError(
        "distributed branch & bound found no incumbent within its budget");
  }
  return run;
}

StatusOr<BatchAdvisorResult> DistCoordinator::AdviseSchemaDistributed(
    const Instance& instance, const BatchAdviseRequest& batch) {
  std::lock_guard<std::mutex> serialize(advise_mu_);
  if (usable_workers() == 0) {
    return FailedPreconditionError(
        "dist coordinator: no workers attached (WaitForWorkers first)");
  }
  const AdviseRequest& request = batch.request;
  if (request.num_sites < 1) {
    return InvalidArgumentError("num_sites must be >= 1");
  }
  Stopwatch watch;
  ScopedObsLevel scoped_obs(request.obs);
  Span span("dist_batch", "dist");
  span.AddArg("instance", instance.name());
  StatusOr<std::vector<TableSubinstance>> split =
      SplitInstanceByTable(instance);
  VPART_RETURN_IF_ERROR(split.status());
  std::vector<TableSubinstance>& subs = *split;
  const int n = static_cast<int>(subs.size());
  span.AddArg("tables", static_cast<long>(n));

  CliRequest job_cli;
  job_cli.instance_text = WriteInstanceText(instance);
  job_cli.request = request;
  job_cli.batch = true;
  JsonValue job = MakeDistMessage(kDistMsgJob);
  job.Set("mode", "tables");
  job.Set("request", CliRequestToJson(job_cli));

  std::map<long, JsonValue> payloads;
  for (int i = 0; i < n; ++i) {
    JsonValue payload = MakeDistMessage(kDistMsgUnit);
    payload.Set("id", static_cast<long>(i));
    payload.Set("table", i);
    payloads[i] = std::move(payload);
  }

  // Per-table budgets are enforced worker-side (every Advise carries
  // request.time_limit_seconds); the session deadline is only the safety
  // net for a fleet that can no longer make progress.
  const CancellationToken token = CancellationToken::WithDeadline(
      request.time_limit_seconds > 0
          ? request.time_limit_seconds * std::max(1, n) + 30.0
          : 0.0);
  SessionOutcome outcome =
      RunSession(/*subtree=*/false, std::move(job), std::move(payloads),
                 /*have_best=*/false, 0.0, {}, token);
  VPART_RETURN_IF_ERROR(outcome.error);
  if (!outcome.completed) {
    return DeadlineExceededError(
        "distributed batch advise did not finish within its budget");
  }

  std::vector<AdvisorResult> answers;
  answers.reserve(n);
  for (int i = 0; i < n; ++i) {
    auto found = outcome.results.find(i);
    if (found == outcome.results.end()) {
      return InternalError(
          StrFormat("dist batch: table unit %d has no result", i));
    }
    const JsonValue* advisor = found->second.Find("advisor");
    StatusOr<AdvisorResult> decoded = DecodeAdvisorResult(
        subs[i].instance, advisor != nullptr ? *advisor : JsonValue());
    VPART_RETURN_IF_ERROR(decoded.status());
    answers.push_back(std::move(*decoded));
  }
  StatusOr<BatchAdvisorResult> merged =
      MergeTableAdvice(instance, subs, std::move(answers), request.num_sites);
  VPART_RETURN_IF_ERROR(merged.status());
  merged->threads_used = usable_workers();
  merged->combined.seconds = watch.ElapsedSeconds();
  merged->seconds = merged->combined.seconds;
  return merged;
}

void DistCoordinator::Shutdown() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (shutting_down_) return;
    shutting_down_ = true;
    if (session_ != nullptr && session_->active) {
      session_->error =
          InternalError("dist coordinator: shut down mid-session");
      session_->ledger.Cancel();
      session_->active = false;
    }
    for (auto& worker : workers_) {
      if (worker->alive) {
        (void)worker->transport->Send(MakeDistMessage(kDistMsgShutdown));
      }
    }
  }
  monitor_cv_.notify_all();
  workers_cv_.notify_all();
  if (solver_registered_) {
    (void)SolverRegistry::Global().Unregister(kSolverDist);
    solver_registered_ = false;
  }
  if (monitor_thread_.joinable()) monitor_thread_.join();
  if (listener_ != nullptr) listener_->Close();
  if (accept_thread_.joinable()) accept_thread_.join();
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (auto& worker : workers_) worker->transport->Abort();
  }
  // No lock below: accept and reader threads are gone or exiting, and no
  // new ones can start.
  for (auto& worker : workers_) {
    if (worker->reader.joinable()) worker->reader.join();
  }
  for (auto& worker : workers_) worker->transport->Close();
  for (pid_t pid : spawned_pids_) {
    int status = 0;
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(5);
    while (true) {
      const pid_t reaped = ::waitpid(pid, &status, WNOHANG);
      if (reaped != 0) break;  // reaped, or not our child anymore
      if (std::chrono::steady_clock::now() > deadline) {
        ::kill(pid, SIGKILL);
        ::waitpid(pid, &status, 0);
        break;
      }
      ::usleep(20 * 1000);
    }
  }
  spawned_pids_.clear();
}

}  // namespace vpart
