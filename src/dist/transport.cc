#include "dist/transport.h"

#include <atomic>
#include <cerrno>
#include <cstring>
#include <mutex>
#include <utility>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "util/wire.h"

namespace vpart {
namespace {

/// One connected stream socket speaking framed JSON. Send serializes under
/// a mutex so concurrent writers cannot interleave frames; Receive has a
/// single caller by contract, so reads run unlocked.
class FdTransport : public Transport {
 public:
  explicit FdTransport(int fd) : fd_(fd) {}
  ~FdTransport() override { Close(); }

  Status Send(const JsonValue& message) override {
    std::lock_guard<std::mutex> lock(write_mu_);
    const int fd = fd_.load(std::memory_order_acquire);
    if (fd < 0) return InternalError("transport closed");
    return WriteFrame(fd, message.Serialize());
  }

  StatusOr<JsonValue> Receive() override {
    const int fd = fd_.load(std::memory_order_acquire);
    if (fd < 0) return NotFoundError("connection closed");
    StatusOr<std::string> frame = ReadFrame(fd);
    VPART_RETURN_IF_ERROR(frame.status());
    return JsonValue::Parse(*frame);
  }

  void Abort() override {
    // shutdown() (not close) wakes a blocked Receive without freeing the
    // descriptor under it — the reader thread still owns the fd value.
    const int fd = fd_.load(std::memory_order_acquire);
    if (fd >= 0) ::shutdown(fd, SHUT_RDWR);
  }

  void Close() override {
    std::lock_guard<std::mutex> lock(write_mu_);
    const int fd = fd_.exchange(-1, std::memory_order_acq_rel);
    if (fd >= 0) ::close(fd);
  }

 private:
  std::atomic<int> fd_;
  std::mutex write_mu_;
};

class UdsListener : public TransportListener {
 public:
  UdsListener(int fd, std::string path)
      : fd_(fd), path_(std::move(path)) {}
  ~UdsListener() override { Close(); }

  StatusOr<std::unique_ptr<Transport>> Accept() override {
    while (true) {
      const int fd = fd_.load(std::memory_order_acquire);
      if (fd < 0) return NotFoundError("listener closed");
      const int client = ::accept(fd, nullptr, nullptr);
      if (client >= 0) return std::unique_ptr<Transport>(
          new FdTransport(client));
      if (errno == EINTR) continue;
      return InternalError(std::string("accept failed: ") +
                           std::strerror(errno));
    }
  }

  void Close() override {
    // shutdown() wakes a blocked Accept (it fails with EINVAL); close()
    // after the exchange so a concurrent Accept never races the free.
    const int fd = fd_.exchange(-1, std::memory_order_acq_rel);
    if (fd >= 0) {
      ::shutdown(fd, SHUT_RDWR);
      ::close(fd);
      ::unlink(path_.c_str());
    }
  }

  const std::string& address() const override { return path_; }

 private:
  std::atomic<int> fd_;
  std::string path_;
};

}  // namespace

StatusOr<std::unique_ptr<TransportListener>> ListenUds(
    const std::string& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof(addr.sun_path)) {
    return InvalidArgumentError("socket path too long: " + path);
  }
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);

  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) {
    return InternalError(std::string("socket failed: ") +
                         std::strerror(errno));
  }
  ::unlink(path.c_str());  // stale socket from a crashed coordinator
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    const std::string detail = std::strerror(errno);
    ::close(fd);
    return InternalError("bind " + path + " failed: " + detail);
  }
  if (::listen(fd, 64) != 0) {
    const std::string detail = std::strerror(errno);
    ::close(fd);
    ::unlink(path.c_str());
    return InternalError("listen " + path + " failed: " + detail);
  }
  return std::unique_ptr<TransportListener>(new UdsListener(fd, path));
}

StatusOr<std::unique_ptr<Transport>> ConnectUds(const std::string& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof(addr.sun_path)) {
    return InvalidArgumentError("socket path too long: " + path);
  }
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);

  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) {
    return InternalError(std::string("socket failed: ") +
                         std::strerror(errno));
  }
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    const std::string detail = std::strerror(errno);
    ::close(fd);
    return InternalError("connect " + path + " failed: " + detail);
  }
  return std::unique_ptr<Transport>(new FdTransport(fd));
}

}  // namespace vpart
