#ifndef VPART_DIST_COORDINATOR_H_
#define VPART_DIST_COORDINATOR_H_

#include <sys/types.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "api/advise.h"
#include "api/request_json.h"
#include "api/solver_registry.h"
#include "dist/ledger.h"
#include "dist/transport.h"
#include "engine/batch_advisor.h"
#include "util/status.h"

namespace vpart {

/// Registry name the coordinator claims for its subtree-sharding solver
/// while it is running; `AdviseDistributed` routes through it so subtree
/// solves ride the full Advise() orchestration (grouping, validation,
/// pricing, certification) unchanged.
inline constexpr const char* kSolverDist = "dist";

/// Multi-process solve coordinator (DESIGN.md "Distributed layer"). Owns a
/// Unix-socket listener, a fleet of worker processes (spawned, or attached
/// externally — `vpart_cli --worker <socket>` / InProcessWorker), and a
/// WorkLedger per solve session. Two sharding modes:
///
///   - tables   (`AdviseSchemaDistributed`): the whole-schema batch is
///     split per table (SplitInstanceByTable) and tables are farmed out;
///     results merge through the same MergeTableAdvice a local batch uses.
///   - subtrees (`AdviseDistributed`): a serial B&B expands the root to a
///     frontier (mip/frontier.h) and ships each open node; workers search
///     their subtrees to exhaustion, incumbents broadcast both ways so
///     every worker prunes against the global best.
///
/// Failure model: a worker that disconnects or misses heartbeats for
/// `heartbeat_timeout_seconds` has its assigned units returned to the
/// ledger and re-dispatched; results from a worker presumed dead are
/// discarded (units complete exactly once). Optimality is certified only
/// when the frontier expansion was clean AND every unit reported an
/// exhausted search — a requeued-and-finished unit still satisfies this,
/// so a mid-solve worker kill cannot silently weaken the proof. If every
/// worker is lost with units outstanding, the solve fails loudly.
class DistCoordinator {
 public:
  struct Options {
    /// Unix socket path; "" derives one from the pid under /tmp.
    std::string socket_path;
    /// Workers to spawn (spawn_workers) and/or wait for at Start().
    int num_workers = 2;
    /// Fork+exec `worker_binary --worker <socket>` children. When false the
    /// caller attaches workers itself (other terminals, InProcessWorker).
    bool spawn_workers = true;
    /// Binary for spawned workers; "" uses /proc/self/exe (correct when the
    /// coordinator runs inside vpart_cli itself).
    std::string worker_binary;
    /// Silence window after which a worker is presumed dead and its units
    /// requeue. Heartbeats tick every ~1s.
    double heartbeat_timeout_seconds = 10.0;
    /// Start() fails if num_workers have not said hello within this.
    double startup_timeout_seconds = 30.0;
  };

  /// Binds the socket, spawns/awaits workers, and registers the "dist"
  /// solver. The registration is exclusive: a second concurrent
  /// coordinator in one process fails here.
  static StatusOr<std::unique_ptr<DistCoordinator>> Start(
      const Options& options);

  ~DistCoordinator();

  /// Idempotent teardown: shutdown messages, reader joins, child reaping.
  void Shutdown();

  const std::string& socket_path() const { return socket_path_; }

  /// Pids of spawned workers (empty when spawn_workers was false).
  std::vector<pid_t> worker_pids() const;

  /// Connected workers currently usable for dispatch.
  int usable_workers() const;

  /// Blocks until `n` workers said hello (or the timeout); true on success.
  bool WaitForWorkers(int n, double timeout_seconds);

  /// Units restored from dead/hung workers over this coordinator's life.
  long requeued_total() const;

  /// Subtree mode: one exact solve, sharded across workers at the B&B
  /// frontier. Same contract as Advise(instance, cli.request) — including
  /// certification via request.certify — with cli.dist.frontier_units
  /// steering the shard count (0 = 4x workers).
  StatusOr<AdviseResponse> AdviseDistributed(const Instance& instance,
                                             const CliRequest& cli);

  /// Table mode: whole-schema batch advice with per-table solves farmed
  /// across workers. Merges byte-identically to a local AdviseSchema over
  /// the same per-table answers.
  StatusOr<BatchAdvisorResult> AdviseSchemaDistributed(
      const Instance& instance, const BatchAdviseRequest& batch);

 private:
  struct WorkerState {
    int id = -1;
    std::unique_ptr<Transport> transport;
    std::thread reader;
    bool alive = true;
    bool ready = false;  // hello received
    long current_unit = -1;
    long job_serial = -1;  // session whose job this worker holds
    pid_t reported_pid = -1;
    std::chrono::steady_clock::time_point last_seen;
  };

  /// One solve session: its ledger, unit payloads, collected results, and
  /// the globally best incumbent seen so far (subtree mode).
  struct Session {
    long serial = 0;
    bool subtree = false;
    JsonValue job;
    std::map<long, JsonValue> payloads;
    WorkLedger ledger;
    std::map<long, JsonValue> results;
    Status error;  // first fatal unit error
    bool active = true;
    bool have_best = false;
    double best_objective = 0.0;
    std::vector<double> best_values;
  };

  struct SessionOutcome {
    std::map<long, JsonValue> results;
    Status error;
    bool completed = false;  // every unit finished
    bool have_best = false;
    double best_objective = 0.0;
    std::vector<double> best_values;
  };

  DistCoordinator() = default;

  Status StartImpl(const Options& options);
  Status SpawnWorker();
  void AcceptLoop();
  void ReaderLoop(WorkerState* worker);
  void MonitorLoop();

  /// Pairs idle workers with pending units (shipping the session job first
  /// when a worker has not seen it). Callers hold mu_.
  void PumpLocked();
  /// Rebroadcasts the session's best incumbent objective to every worker
  /// holding the session's job, except `from` (the one that reported it).
  void BroadcastIncumbentLocked(const WorkerState* from);
  void HandleIncumbentLocked(WorkerState* worker, const JsonValue& message);
  void HandleResultLocked(WorkerState* worker, const std::string& type,
                          const JsonValue& message);
  void HandleWorkerDeathLocked(WorkerState* worker);
  int UsableWorkersLocked() const;

  /// Dispatches a prepared session and blocks until it completes, errors,
  /// every worker is lost, or `token` fires (partial results then).
  SessionOutcome RunSession(bool subtree, JsonValue job,
                            std::map<long, JsonValue> payloads,
                            bool have_best, double best_objective,
                            std::vector<double> best_values,
                            const CancellationToken& token);

  /// Body of the registered "dist" solver (subtree mode).
  StatusOr<SolverRun> SolveSubtrees(const CostCoefficients& cost_model,
                                    const AdviseRequest& request,
                                    const SolveContext& ctx);
  friend class DistSolverAdapter;

  std::string socket_path_;
  Options options_;
  std::unique_ptr<TransportListener> listener_;
  std::thread accept_thread_;
  std::thread monitor_thread_;
  bool solver_registered_ = false;

  mutable std::mutex mu_;
  std::condition_variable workers_cv_;
  std::vector<std::unique_ptr<WorkerState>> workers_;
  std::unique_ptr<Session> session_;
  long session_serial_ = 0;
  long requeued_total_ = 0;
  bool shutting_down_ = false;
  std::condition_variable monitor_cv_;

  std::vector<pid_t> spawned_pids_;

  /// Serializes the public advise entry points (one session at a time) and
  /// carries the per-call frontier target into SolveSubtrees.
  std::mutex advise_mu_;
  int frontier_target_ = 0;
};

}  // namespace vpart

#endif  // VPART_DIST_COORDINATOR_H_
