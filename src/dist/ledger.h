#ifndef VPART_DIST_LEDGER_H_
#define VPART_DIST_LEDGER_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <optional>
#include <vector>

namespace vpart {

/// Tracks every outstanding work unit of a distributed solve so nothing is
/// lost when a worker dies. Units move pending -> assigned -> done; when a
/// worker's connection drops (or its heartbeat lapses), Requeue() moves its
/// assigned units back to the *front* of the pending queue — they carry the
/// best bounds, so re-running them first keeps the proof tight. The
/// coordinator certifies optimality only once AllDone() holds AND every
/// completed unit reported an exhausted search; the ledger supplies the
/// first half of that conjunction.
///
/// Thread-safe; reader threads, the dispatcher, and the heartbeat monitor
/// all touch it concurrently.
class WorkLedger {
 public:
  /// Registers a unit as pending. Ids must be unique over the ledger's life.
  void Add(long id);

  /// Pops the next pending unit and records it as assigned to `worker`.
  /// Empty optional when nothing is pending (units may still be assigned).
  std::optional<long> Acquire(int worker);

  /// Marks an assigned unit done. Returns false for ids this ledger never
  /// assigned (or that were already requeued to another worker — a stale
  /// result from a worker presumed dead, which the caller must discard).
  bool Complete(int worker, long id);

  /// Returns `worker`'s assigned units to the head of the pending queue and
  /// reports them, oldest first. Called when a worker dies or goes silent.
  std::vector<long> Requeue(int worker);

  /// True once every added unit is done.
  bool AllDone() const;

  /// Blocks until AllDone() or Cancel().  Returns AllDone().
  bool Wait();

  /// As Wait(), but gives up after `seconds`. Returns AllDone().
  bool WaitFor(double seconds);

  /// Unblocks Wait() without completing the remaining units.
  void Cancel();

  bool pending_empty() const;
  long requeued_total() const;

 private:
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<long> pending_;
  std::map<long, int> assigned_;  // unit id -> worker
  long added_ = 0;
  long done_ = 0;
  long requeued_total_ = 0;
  bool cancelled_ = false;
};

}  // namespace vpart

#endif  // VPART_DIST_LEDGER_H_
