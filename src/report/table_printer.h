#ifndef VPART_REPORT_TABLE_PRINTER_H_
#define VPART_REPORT_TABLE_PRINTER_H_

#include <string>
#include <vector>

namespace vpart {

/// Column-aligned ASCII tables for the bench harness. Numeric-looking cells
/// are right-aligned, everything else left-aligned.
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> headers);

  void AddRow(std::vector<std::string> cells);
  /// Inserts a horizontal rule before the next row.
  void AddSeparator();

  std::string ToString() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;  // empty row == separator
};

/// Formats a cost in the paper's table style: `value / unit` with three
/// decimals, e.g. unit=1e6 -> "1.567". NaN prints "-".
std::string FormatCost(double value, double unit);

/// Paper Table-3 style cell: plain for proved optima, "(cost)" when a limit
/// was hit with an incumbent, "t/o" with none.
std::string FormatCostCell(bool has_solution, bool timed_out, double value,
                           double unit);

}  // namespace vpart

#endif  // VPART_REPORT_TABLE_PRINTER_H_
