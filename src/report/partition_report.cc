#include "report/partition_report.h"

#include <algorithm>
#include <sstream>

#include "util/string_util.h"

namespace vpart {

std::string RenderPartitionTable(const Instance& instance,
                                 const Partitioning& partitioning) {
  std::ostringstream out;
  for (int s = 0; s < partitioning.num_sites(); ++s) {
    out << "=== Site " << (s + 1) << " ===\n";
    for (int t : partitioning.TransactionsOnSite(s)) {
      out << "Transaction " << instance.workload().transaction(t).name
          << "\n";
    }
    std::vector<std::string> names;
    for (int a : partitioning.AttributesOnSite(s)) {
      names.push_back(instance.schema().QualifiedName(a));
    }
    std::sort(names.begin(), names.end());
    for (const std::string& name : names) {
      out << "  " << name << "\n";
    }
    out << "\n";
  }
  return out.str();
}

std::string RenderPartitionSummary(const CostCoefficients& cost_model,
                                   const Partitioning& partitioning) {
  const Instance& instance = cost_model.instance();
  std::ostringstream out;
  const CostBreakdown breakdown = cost_model.Breakdown(partitioning);
  out << StrFormat(
      "objective(4) = %.6g  [read %.6g + write %.6g + p*transfer %g*%.6g]\n",
      breakdown.total, breakdown.read_access, breakdown.write_access,
      cost_model.params().p, breakdown.transfer);
  out << StrFormat("objective(6) = %.6g  (lambda = %g)\n",
                   cost_model.ScalarizedObjective(partitioning),
                   cost_model.params().lambda);
  for (int s = 0; s < partitioning.num_sites(); ++s) {
    out << StrFormat(
        "site %d: %2zu transactions, %3zu attributes, load %.6g\n", s + 1,
        partitioning.TransactionsOnSite(s).size(),
        partitioning.AttributesOnSite(s).size(),
        cost_model.SiteLoad(partitioning, s));
  }
  int replicated = 0;
  int replicas = 0;
  for (int a = 0; a < instance.num_attributes(); ++a) {
    const int count = partitioning.ReplicaCount(a);
    replicas += count;
    if (count > 1) ++replicated;
  }
  out << StrFormat("%d/%d attributes replicated (%d placements total)\n",
                   replicated, instance.num_attributes(), replicas);
  return out.str();
}

}  // namespace vpart
