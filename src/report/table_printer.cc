#include "report/table_printer.h"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <sstream>

#include "util/string_util.h"

namespace vpart {
namespace {

bool LooksNumeric(const std::string& cell) {
  if (cell.empty()) return false;
  for (char c : cell) {
    if (!std::isdigit(static_cast<unsigned char>(c)) && c != '.' &&
        c != '-' && c != '+' && c != '(' && c != ')' && c != '%' &&
        c != 'e') {
      return false;
    }
  }
  return std::isdigit(static_cast<unsigned char>(cell[0])) ||
         cell[0] == '-' || cell[0] == '(' || cell[0] == '.';
}

}  // namespace

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void TablePrinter::AddRow(std::vector<std::string> cells) {
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
}

void TablePrinter::AddSeparator() { rows_.push_back({}); }

std::string TablePrinter::ToString() const {
  const size_t cols = headers_.size();
  std::vector<size_t> width(cols, 0);
  for (size_t c = 0; c < cols; ++c) width[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }

  std::ostringstream out;
  auto rule = [&] {
    for (size_t c = 0; c < cols; ++c) {
      out << "+" << std::string(width[c] + 2, '-');
    }
    out << "+\n";
  };
  auto emit = [&](const std::vector<std::string>& row, bool align_numeric) {
    for (size_t c = 0; c < cols; ++c) {
      const std::string& cell = c < row.size() ? row[c] : std::string();
      const bool right = align_numeric && LooksNumeric(cell);
      out << "| ";
      if (right) {
        out << std::string(width[c] - cell.size(), ' ') << cell;
      } else {
        out << cell << std::string(width[c] - cell.size(), ' ');
      }
      out << " ";
    }
    out << "|\n";
  };

  rule();
  emit(headers_, /*align_numeric=*/false);
  rule();
  for (const auto& row : rows_) {
    if (row.empty()) {
      rule();
    } else {
      emit(row, /*align_numeric=*/true);
    }
  }
  rule();
  return out.str();
}

std::string FormatCost(double value, double unit) {
  if (!std::isfinite(value)) return "-";
  return StrFormat("%.3f", value / unit);
}

std::string FormatCostCell(bool has_solution, bool timed_out, double value,
                           double unit) {
  if (!has_solution) return "t/o";
  if (timed_out) return "(" + FormatCost(value, unit) + ")";
  return FormatCost(value, unit);
}

}  // namespace vpart
