#ifndef VPART_REPORT_INSTANCE_REPORT_H_
#define VPART_REPORT_INSTANCE_REPORT_H_

#include <string>

#include "workload/instance.h"

namespace vpart {

/// Aggregate statistics of a problem instance; the numbers a DBA would
/// check before trusting the model's inputs.
struct InstanceStats {
  int tables = 0;
  int attributes = 0;
  int transactions = 0;
  int queries = 0;
  int read_queries = 0;
  int write_queries = 0;
  double total_width = 0.0;        // Σ attribute widths (bytes)
  double min_width = 0.0;
  double max_width = 0.0;
  double total_weight = 0.0;       // Σ W_{a,q}
  double write_weight = 0.0;       // Σ W over write queries
  int widest_table = -1;           // table id with the largest row width
  double widest_table_bytes = 0.0;
  int referenced_attributes = 0;   // attributes referenced by some query
};

InstanceStats ComputeInstanceStats(const Instance& instance);

/// Multi-line human-readable rendering of the stats.
std::string RenderInstanceSummary(const Instance& instance);

}  // namespace vpart

#endif  // VPART_REPORT_INSTANCE_REPORT_H_
