#include "report/instance_report.h"

#include <algorithm>
#include <sstream>
#include <vector>

#include "util/string_util.h"

namespace vpart {

InstanceStats ComputeInstanceStats(const Instance& instance) {
  InstanceStats stats;
  const Schema& schema = instance.schema();
  const Workload& workload = instance.workload();
  stats.tables = schema.num_tables();
  stats.attributes = schema.num_attributes();
  stats.transactions = workload.num_transactions();
  stats.queries = workload.num_queries();

  stats.min_width = stats.attributes > 0 ? schema.attribute(0).width : 0;
  for (const Attribute& attr : schema.attributes()) {
    stats.total_width += attr.width;
    stats.min_width = std::min(stats.min_width, attr.width);
    stats.max_width = std::max(stats.max_width, attr.width);
  }
  for (const Table& table : schema.tables()) {
    double row = 0;
    for (int a : table.attribute_ids) row += schema.attribute(a).width;
    if (row > stats.widest_table_bytes) {
      stats.widest_table_bytes = row;
      stats.widest_table = table.id;
    }
  }

  std::vector<bool> referenced(stats.attributes, false);
  for (const Query& query : workload.queries()) {
    if (query.is_write()) {
      ++stats.write_queries;
    } else {
      ++stats.read_queries;
    }
    for (int a : query.attributes) referenced[a] = true;
  }
  stats.referenced_attributes =
      static_cast<int>(std::count(referenced.begin(), referenced.end(), true));

  for (int q = 0; q < instance.num_queries(); ++q) {
    const bool write = instance.is_write(q);
    for (int a = 0; a < stats.attributes; ++a) {
      const double w = instance.W(a, q);
      stats.total_weight += w;
      if (write) stats.write_weight += w;
    }
  }
  return stats;
}

std::string RenderInstanceSummary(const Instance& instance) {
  const InstanceStats stats = ComputeInstanceStats(instance);
  std::ostringstream out;
  out << "instance " << instance.name() << ":\n";
  out << StrFormat("  %d tables, %d attributes (%d referenced by queries)\n",
                   stats.tables, stats.attributes,
                   stats.referenced_attributes);
  out << StrFormat("  %d transactions, %d queries (%d read / %d write)\n",
                   stats.transactions, stats.queries, stats.read_queries,
                   stats.write_queries);
  out << StrFormat("  attribute widths: %.0f..%.0f bytes, %.0f total\n",
                   stats.min_width, stats.max_width, stats.total_width);
  if (stats.widest_table >= 0) {
    out << StrFormat("  widest table: %s (%.0f bytes/row)\n",
                     instance.schema().table(stats.widest_table).name.c_str(),
                     stats.widest_table_bytes);
  }
  const double write_share =
      stats.total_weight > 0 ? 100.0 * stats.write_weight / stats.total_weight
                             : 0.0;
  out << StrFormat("  workload weight: %.0f (%.1f%% from writes)\n",
                   stats.total_weight, write_share);
  return out.str();
}

}  // namespace vpart
