#ifndef VPART_REPORT_PARTITION_REPORT_H_
#define VPART_REPORT_PARTITION_REPORT_H_

#include <string>

#include "cost/cost_coefficients.h"

namespace vpart {

/// Renders a partitioning in the layout of the paper's Table 4: one section
/// per site listing its transactions, then its attributes in qualified-name
/// order.
std::string RenderPartitionTable(const Instance& instance,
                                 const Partitioning& partitioning);

/// One-paragraph summary: objective (4), breakdown, per-site loads,
/// replication statistics. Used by the examples and benches.
std::string RenderPartitionSummary(const CostCoefficients& cost_model,
                                   const Partitioning& partitioning);

}  // namespace vpart

#endif  // VPART_REPORT_PARTITION_REPORT_H_
