#include "lp/factorization.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <queue>

namespace vpart {

namespace {

/// Entries whose magnitude falls below this after an elimination update are
/// treated as exact cancellations and dropped from the sparse structures.
constexpr double kDropTol = 1e-14;

}  // namespace

void LuFactorization::Clear() {
  valid_ = false;
  updates_ = 0;
  etas_.clear();
  order_.clear();
  pivot_row_.assign(num_rows_, -1);
  pos_of_.assign(num_rows_, -1);
  diag_.assign(num_rows_, 0.0);
  ucols_.assign(num_rows_, {});
  urows_.assign(num_rows_, {});
  workspace_.assign(num_rows_, 0.0);
  solve_.assign(num_rows_, 0.0);
  rowwork_.assign(num_rows_, 0.0);
}

long LuFactorization::factor_nonzeros() const {
  long nnz = num_rows_;  // diagonals
  for (const EtaOp& eta : etas_) {
    nnz += static_cast<long>(eta.entries.size()) + 1;
  }
  for (const auto& col : ucols_) nnz += static_cast<long>(col.size());
  return nnz;
}

bool LuFactorization::Factorize(const std::vector<int>& col_start,
                                const std::vector<int>& row_index,
                                const std::vector<double>& value,
                                const std::vector<int>& basis, int num_rows) {
  num_rows_ = num_rows;
  Clear();
  const int m = num_rows;
  if (static_cast<int>(basis.size()) != m) return false;

  // Active submatrix, column-wise over basis positions. Entries only ever
  // reference active (unpivoted) rows: a pivoted row's entries are removed
  // from every affected column during its elimination step.
  std::vector<std::vector<std::pair<int, double>>> acols(m);
  std::vector<int> col_count(m, 0), row_count(m, 0);
  // Superset of the positions whose column touches each row (append-only;
  // entries are validated against acols on use).
  std::vector<std::vector<int>> row_cols(m);
  for (int k = 0; k < m; ++k) {
    const int j = basis[k];
    if (j < 0) return false;
    for (int idx = col_start[j]; idx < col_start[j + 1]; ++idx) {
      const double v = value[idx];
      if (v == 0.0) continue;
      const int i = row_index[idx];
      acols[k].emplace_back(i, v);
      row_cols[i].push_back(k);
      ++row_count[i];
    }
    col_count[k] = static_cast<int>(acols[k].size());
    if (col_count[k] == 0) return false;  // structurally singular
  }

  std::vector<uint8_t> pivoted_row(m, 0), pivoted_col(m, 0);
  // Markowitz candidate buckets keyed by active column count. Entries can
  // be stale (the count moved on); they are validated and refiled on scan.
  std::vector<std::vector<int>> buckets(m + 1);
  std::vector<int> filed_count(m, -1);
  auto refile = [&](int k) {
    if (pivoted_col[k]) return;
    const int c = col_count[k];
    if (c >= 0 && c <= m && filed_count[k] != c) {
      buckets[c].push_back(k);
      filed_count[k] = c;
    }
  };
  for (int k = 0; k < m; ++k) refile(k);

  // Presence map for the scatter/gather column updates.
  std::vector<uint8_t> present(m, 0);
  std::vector<int> touched;
  touched.reserve(64);

  for (int step = 0; step < m; ++step) {
    // --- pivot selection: threshold partial pivoting within the sparsest
    // candidate columns, best Markowitz score (r-1)(c-1) among them.
    int best_row = -1, best_col = -1;
    long best_score = -1;
    double best_abs = 0.0;
    int examined = 0;
    for (int c = 1; c <= m && best_score != 0; ++c) {
      auto& bucket = buckets[c];
      for (size_t idx = bucket.size(); idx-- > 0;) {
        const int k = bucket[idx];
        if (pivoted_col[k] || col_count[k] != c) {
          bucket[idx] = bucket.back();
          bucket.pop_back();
          refile(k);
          continue;
        }
        double colmax = 0.0;
        for (const auto& [i, v] : acols[k]) colmax = std::max(colmax, std::abs(v));
        if (colmax < options_.pivot_tol) continue;  // revisit once updated
        const double eligible = std::max(options_.pivot_tol,
                                         options_.markowitz_threshold * colmax);
        int krow = -1;
        double kabs = 0.0;
        long kscore = -1;
        for (const auto& [i, v] : acols[k]) {
          const double a = std::abs(v);
          if (a + 1e-300 < eligible) continue;
          const long score = static_cast<long>(row_count[i] - 1) * (c - 1);
          if (kscore < 0 || score < kscore ||
              (score == kscore && a > kabs)) {
            kscore = score;
            krow = i;
            kabs = a;
          }
        }
        if (krow < 0) continue;
        if (best_score < 0 || kscore < best_score ||
            (kscore == best_score && kabs > best_abs)) {
          best_score = kscore;
          best_row = krow;
          best_col = k;
          best_abs = kabs;
        }
        if (++examined >= options_.candidate_limit || best_score == 0) break;
      }
      if (best_col >= 0 &&
          (examined >= options_.candidate_limit || best_score == 0)) {
        break;
      }
    }
    if (best_col < 0) {
      // No bucket produced a candidate above pivot_tol: numerically
      // singular basis.
      Clear();
      return false;
    }

    const int pr = best_row;
    const int pk = best_col;
    double piv = 0.0;
    for (const auto& [i, v] : acols[pk]) {
      if (i == pr) piv = v;
    }
    assert(piv != 0.0);

    // L eta: the pivot column's other active entries.
    EtaOp eta;
    eta.kind = EtaOp::Kind::kColumn;
    eta.row = pr;
    eta.pivot = piv;
    for (const auto& [i, v] : acols[pk]) {
      if (i != pr) {
        eta.entries.emplace_back(i, v);
        --row_count[i];  // column pk leaves the active matrix
      }
    }

    pivoted_row[pr] = 1;
    pivoted_col[pk] = 1;
    pivot_row_[pk] = pr;
    pos_of_[pk] = step;
    order_.push_back(pk);
    diag_[pk] = 1.0;

    // Eliminate row pr from every active column it touches, recording the
    // U row (values divided by the pivot) as it freezes. present[] tags
    // each touched row: 1 = existing member of the column, 2 = fill.
    for (int k : row_cols[pr]) {
      if (pivoted_col[k]) continue;
      double v = 0.0;
      bool found = false;
      for (const auto& [i, val] : acols[k]) {
        if (i == pr) {
          v = val;
          found = true;
          break;
        }
      }
      if (!found) continue;  // stale membership
      const double mult = v / piv;
      ucols_[k].emplace_back(pr, mult);
      urows_[pr].emplace_back(k, mult);

      // Column update: drop row pr, subtract mult * pivot column.
      touched.clear();
      for (const auto& [i, val] : acols[k]) {
        if (i == pr) continue;
        workspace_[i] = val;
        present[i] = 1;
        touched.push_back(i);
      }
      for (const auto& [i, a] : eta.entries) {
        if (!present[i]) {
          present[i] = 2;  // fill candidate
          touched.push_back(i);
          workspace_[i] = 0.0;
        }
        workspace_[i] -= a * mult;
      }
      auto& col = acols[k];
      col.clear();
      for (int i : touched) {
        const double w = workspace_[i];
        if (std::abs(w) > kDropTol) {
          col.emplace_back(i, w);
          if (present[i] == 2) {  // realized fill
            ++row_count[i];
            row_cols[i].push_back(k);
          }
        } else if (present[i] == 1) {  // exact cancellation
          --row_count[i];
        }
        workspace_[i] = 0.0;
        present[i] = 0;
      }
      col_count[k] = static_cast<int>(col.size());
      refile(k);
    }

    etas_.push_back(std::move(eta));
  }

  fresh_nonzeros_ = factor_nonzeros();
  valid_ = true;
  ++stats_.factorizations;
  return true;
}

void LuFactorization::Ftran(std::vector<double>& w) const {
  if (!valid_) return;
  for (const EtaOp& eta : etas_) {
    if (eta.kind == EtaOp::Kind::kColumn) {
      const double wr = w[eta.row];
      if (wr == 0.0) continue;
      const double piv = wr / eta.pivot;
      w[eta.row] = piv;
      for (const auto& [i, v] : eta.entries) w[i] -= v * piv;
    } else {
      double dot = 0.0;
      for (const auto& [i, v] : eta.entries) dot += v * w[i];
      w[eta.row] -= dot;
    }
  }
  // Back substitution on U (unit or explicit diagonals), reverse pivot
  // order; the solution is indexed by basis position.
  for (int t = num_rows_ - 1; t >= 0; --t) {
    const int k = order_[t];
    const int r = pivot_row_[k];
    const double xk = w[r] / diag_[k];
    solve_[k] = xk;
    if (xk != 0.0) {
      for (const auto& [i, v] : ucols_[k]) w[i] -= v * xk;
    }
  }
  w = solve_;
}

void LuFactorization::Btran(std::vector<double>& v) const {
  if (!valid_) return;
  // Forward substitution on Uᵀ in pivot order; z lives in row space.
  for (int t = 0; t < num_rows_; ++t) {
    const int k = order_[t];
    const int r = pivot_row_[k];
    double acc = v[k];
    for (const auto& [i, val] : ucols_[k]) acc -= val * solve_[i];
    solve_[r] = acc / diag_[k];
  }
  // Transposed left factor, reverse order.
  for (auto it = etas_.rbegin(); it != etas_.rend(); ++it) {
    if (it->kind == EtaOp::Kind::kColumn) {
      double dot = 0.0;
      for (const auto& [i, val] : it->entries) dot += val * solve_[i];
      solve_[it->row] = (solve_[it->row] - dot) / it->pivot;
    } else {
      const double vr = solve_[it->row];
      if (vr != 0.0) {
        for (const auto& [i, val] : it->entries) solve_[i] -= val * vr;
      }
    }
  }
  v = solve_;
}

void LuFactorization::PartialFtran(const std::vector<int>& col_start,
                                   const std::vector<int>& row_index,
                                   const std::vector<double>& value, int j,
                                   std::vector<int>& support) const {
  support.clear();
  for (int idx = col_start[j]; idx < col_start[j + 1]; ++idx) {
    if (value[idx] == 0.0) continue;
    if (workspace_[row_index[idx]] == 0.0) support.push_back(row_index[idx]);
    workspace_[row_index[idx]] += value[idx];
  }
  for (const EtaOp& eta : etas_) {
    if (eta.kind == EtaOp::Kind::kColumn) {
      const double wr = workspace_[eta.row];
      if (wr == 0.0) continue;
      const double piv = wr / eta.pivot;
      workspace_[eta.row] = piv;
      for (const auto& [i, v] : eta.entries) {
        if (workspace_[i] == 0.0 && v * piv != 0.0) support.push_back(i);
        workspace_[i] -= v * piv;
      }
    } else {
      double dot = 0.0;
      for (const auto& [i, v] : eta.entries) dot += v * workspace_[i];
      if (dot != 0.0 && workspace_[eta.row] == 0.0) {
        support.push_back(eta.row);
      }
      workspace_[eta.row] -= dot;
    }
  }
}

void LuFactorization::RemoveRowEntry(int row, int pos) {
  auto& entries = urows_[row];
  for (size_t idx = 0; idx < entries.size(); ++idx) {
    if (entries[idx].first == pos) {
      entries[idx] = entries.back();
      entries.pop_back();
      return;
    }
  }
}

void LuFactorization::RemoveColEntry(int pos, int row) {
  auto& entries = ucols_[pos];
  for (size_t idx = 0; idx < entries.size(); ++idx) {
    if (entries[idx].first == row) {
      entries[idx] = entries.back();
      entries.pop_back();
      return;
    }
  }
}

bool LuFactorization::Update(const std::vector<int>& col_start,
                             const std::vector<int>& row_index,
                             const std::vector<double>& value, int entering,
                             int pos) {
  if (!valid_) return false;
  const int t0 = pos_of_[pos];
  const int r0 = pivot_row_[pos];

  // Spike = L⁻¹ a_entering (partial FTRAN through the left factor only).
  std::vector<int> support;
  PartialFtran(col_start, row_index, value, entering, support);
  double spike_max = 0.0;
  for (int i : support) spike_max = std::max(spike_max, std::abs(workspace_[i]));

  auto clear_spike = [&]() {
    for (int i : support) workspace_[i] = 0.0;
  };

  // Remove the leaving column of U.
  for (const auto& [i, v] : ucols_[pos]) {
    (void)v;
    RemoveRowEntry(i, pos);
  }
  ucols_[pos].clear();
  diag_[pos] = 0.0;

  // Detach row r0's off-diagonal entries (all at later pivot positions);
  // they seed the Forrest–Tomlin row elimination.
  std::vector<std::pair<int, double>> row_entries = std::move(urows_[r0]);
  urows_[r0].clear();
  for (const auto& [k, v] : row_entries) {
    (void)v;
    RemoveColEntry(k, r0);
  }

  // Eliminate row r0 against the later pivot rows, in pivot order; fill
  // lands at still-later positions and is eliminated in turn. solve_ is
  // the dense row workspace (position-indexed).
  using Break = std::pair<int, int>;  // (order index, position)
  std::priority_queue<Break, std::vector<Break>, std::greater<Break>> heap;
  for (const auto& [k, v] : row_entries) {
    rowwork_[k] = v;
    heap.push({pos_of_[k], k});
  }
  double dval = workspace_[r0];  // spike's diagonal seed
  std::vector<std::pair<int, double>> eta_entries;
  while (!heap.empty()) {
    const auto [t, k] = heap.top();
    heap.pop();
    (void)t;
    const double val = rowwork_[k];
    rowwork_[k] = 0.0;
    if (std::abs(val) <= kDropTol) continue;
    const int rj = pivot_row_[k];
    const double mu = val / diag_[k];
    eta_entries.emplace_back(rj, mu);
    for (const auto& [k2, v2] : urows_[rj]) {
      if (rowwork_[k2] == 0.0) heap.push({pos_of_[k2], k2});
      rowwork_[k2] -= mu * v2;
    }
    // The row operation also folds the spike's rj entry into the diagonal.
    dval -= mu * workspace_[rj];
  }

  // Stability gate: a vanishing new diagonal means the update cannot be
  // trusted — reject and force a refactorization.
  if (std::abs(dval) <
      std::max(options_.pivot_tol, options_.stability_tol * spike_max)) {
    clear_spike();
    ++stats_.refactor_stability;
    valid_ = false;
    return false;
  }

  // Install the spike as column `pos`, diagonal dval at row r0. Entries
  // are zeroed as they are consumed so a row that appears twice in
  // `support` (cancelled and refilled during the partial FTRAN) cannot be
  // installed twice.
  diag_[pos] = dval;
  for (int i : support) {
    const double v = workspace_[i];
    workspace_[i] = 0.0;
    if (i == r0 || std::abs(v) <= kDropTol) continue;
    ucols_[pos].emplace_back(i, v);
    urows_[i].emplace_back(pos, v);
  }

  // Move `pos` to the end of the pivot order.
  order_.erase(order_.begin() + t0);
  order_.push_back(pos);
  for (int t = t0; t < num_rows_; ++t) pos_of_[order_[t]] = t;

  if (!eta_entries.empty()) {
    EtaOp eta;
    eta.kind = EtaOp::Kind::kRow;
    eta.row = r0;
    eta.entries = std::move(eta_entries);
    etas_.push_back(std::move(eta));
  }

  ++updates_;
  ++stats_.ft_updates;
  return true;
}

bool LuFactorization::NeedsRefactorization() {
  if (!valid_) return true;
  if (updates_ >= options_.refactor_interval) {
    ++stats_.refactor_updates;
    return true;
  }
  if (updates_ > 0 &&
      factor_nonzeros() >
          static_cast<long>(options_.fill_ratio *
                            static_cast<double>(fresh_nonzeros_)) +
              num_rows_) {
    ++stats_.refactor_fill;
    return true;
  }
  return false;
}

}  // namespace vpart
