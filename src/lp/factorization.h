#ifndef VPART_LP_FACTORIZATION_H_
#define VPART_LP_FACTORIZATION_H_

#include <cstdint>
#include <vector>

namespace vpart {

/// Sparse LU factorization of a simplex basis with Forrest–Tomlin updates.
///
/// `Factorize()` computes B = L·U by right-looking Gaussian elimination with
/// Markowitz pivoting (pick the entry minimizing the fill bound
/// (row_count-1)·(col_count-1)) under threshold partial pivoting (only
/// entries within `markowitz_threshold` of their column's largest active
/// entry are pivot-eligible, so sparsity never buys instability). The basis
/// is addressed as columns of the caller's CSC matrix; basis *positions*
/// (indices into the caller's row -> column map) are preserved — unlike a
/// product-form rebuild, factorizing never permutes the caller's basis
/// order, which keeps Basis snapshots and steepest-edge weights stable.
///
/// `Update()` applies a Forrest–Tomlin modification when one basis column
/// is replaced: the spike L⁻¹a_q substitutes the leaving column of U, the
/// leaving pivot row is eliminated against the later pivot rows (recorded
/// as one row-transformation eta), and the pivot moves to the end of the
/// elimination order. U stays triangular in the pivot order, so FTRAN and
/// BTRAN keep their two-triangular-solve shape; cost per update is
/// proportional to the entries touched rather than to the pivot count
/// since the last rebuild (the failure mode of the old eta file).
///
/// `NeedsRefactorization()` reports when the accumulated updates should be
/// collapsed into a fresh factorization: after `refactor_interval` updates,
/// or when fill (L + row etas + U) outgrows `fill_ratio` times the fresh
/// factorization's nonzeros. A FALSE return from Update() is the stability
/// trigger: the new diagonal came out too small to trust and the caller
/// must refactorize instead. The three triggers are counted separately
/// (see Stats) and surface in telemetry.mip as refactor_updates /
/// refactor_fill / refactor_stability.
///
/// Index spaces (matching SimplexSolver): FTRAN maps a row-space vector b
/// to the position-space solution x of Bx = b (x[k] belongs to the basic
/// variable at position k); BTRAN maps a position-space cost vector to the
/// row-space multipliers pi of Bᵀpi = c. See src/lp/README.md for a worked
/// example.
///
/// Not thread-safe; one instance per SimplexSolver.
class LuFactorization {
 public:
  struct Options {
    /// Entries below this absolute magnitude are never pivots.
    double pivot_tol = 1e-8;
    /// Threshold partial pivoting: a pivot candidate must satisfy
    /// |a_ij| >= markowitz_threshold * max_i'|a_i'j| within its column.
    double markowitz_threshold = 0.1;
    /// Forrest–Tomlin updates accepted before NeedsRefactorization().
    int refactor_interval = 100;
    /// Refactorize when factor nonzeros exceed this multiple of the fresh
    /// factorization's nonzeros.
    double fill_ratio = 6.0;
    /// An update whose new diagonal is below
    /// max(pivot_tol, stability_tol * |spike|_inf) is rejected.
    double stability_tol = 1e-10;
    /// Markowitz candidate columns inspected per pivot beyond the first
    /// eligible one (more = sparser factors, slower factorize).
    int candidate_limit = 4;
  };

  struct Stats {
    long factorizations = 0;       ///< Fresh Factorize() calls that succeeded.
    long ft_updates = 0;           ///< Forrest–Tomlin updates applied.
    long refactor_updates = 0;     ///< Triggers: update-count cap reached.
    long refactor_fill = 0;        ///< Triggers: fill-ratio cap exceeded.
    long refactor_stability = 0;   ///< Triggers: rejected (unstable) update.
    void Reset() { *this = Stats(); }
  };

  LuFactorization() = default;
  explicit LuFactorization(const Options& options) : options_(options) {}

  const Options& options() const { return options_; }
  void set_options(const Options& options) { options_ = options; }

  /// Factorizes the basis given as columns of a CSC matrix:
  /// column j spans row_index/value[col_start[j] .. col_start[j+1]).
  /// `basis[k]` is the CSC column at basis position k; `num_rows` is m.
  /// Returns false (leaving the factorization invalid) on a singular or
  /// numerically unusable basis.
  bool Factorize(const std::vector<int>& col_start,
                 const std::vector<int>& row_index,
                 const std::vector<double>& value,
                 const std::vector<int>& basis, int num_rows);

  /// Forrest–Tomlin update after the basis change "column `entering` (a CSC
  /// column index) replaces the basic variable at position `pos`". Returns
  /// false when the update would be unstable — the factorization is then
  /// stale and the caller must Refactorize before the next solve.
  bool Update(const std::vector<int>& col_start,
              const std::vector<int>& row_index,
              const std::vector<double>& value, int entering, int pos);

  /// w (row space, size m) := B⁻¹w (position space). No-op when !valid().
  void Ftran(std::vector<double>& w) const;

  /// v (position space, size m) := B⁻ᵀv (row space). No-op when !valid().
  void Btran(std::vector<double>& v) const;

  /// True between a successful Factorize() and the first rejected Update().
  bool valid() const { return valid_; }

  /// Caller-observed numerical distrust (e.g. an FTRAN/BTRAN disagreement
  /// on a pivot): invalidates the factorization and counts a stability
  /// trigger, so the forced rebuild shows up in telemetry like a rejected
  /// update would.
  void MarkUnstable() {
    valid_ = false;
    ++stats_.refactor_stability;
  }

  /// Update-count / fill triggers (stability is signalled by Update()
  /// returning false). Also counts the firing trigger into stats().
  bool NeedsRefactorization();

  int num_rows() const { return num_rows_; }
  /// Nonzeros currently held across L, the update etas, and U.
  long factor_nonzeros() const;
  int updates_since_factorize() const { return updates_; }

  const Stats& stats() const { return stats_; }
  void ResetStats() { stats_.Reset(); }

 private:
  /// One elementary transformation of the left factor, applied to row-space
  /// vectors during FTRAN (and transposed, in reverse, during BTRAN).
  ///  * kColumn (from Factorize): w[row] /= pivot; w[i] -= v_i * w[row] —
  ///    the classic Gauss column elimination, pivot kept explicit.
  ///  * kRow (from Update): w[row] -= sum_i v_i * w[i] — the Forrest–Tomlin
  ///    row elimination folded into the left factor.
  struct EtaOp {
    enum class Kind : uint8_t { kColumn, kRow };
    Kind kind = Kind::kColumn;
    int row = -1;
    double pivot = 1.0;  // kColumn only
    std::vector<std::pair<int, double>> entries;
  };

  void Clear();
  /// Scatters CSC column `j` into workspace_ and applies the left factor
  /// (partial FTRAN); the result is the spike L⁻¹a_j. Returns its support.
  void PartialFtran(const std::vector<int>& col_start,
                    const std::vector<int>& row_index,
                    const std::vector<double>& value, int j,
                    std::vector<int>& support) const;
  void RemoveRowEntry(int row, int pos);
  void RemoveColEntry(int pos, int row);

  Options options_;
  int num_rows_ = 0;
  bool valid_ = false;
  int updates_ = 0;
  long fresh_nonzeros_ = 0;  // L + U nnz right after Factorize()
  Stats stats_;

  // Left factor: column etas from Factorize, then row etas from updates.
  std::vector<EtaOp> etas_;

  // U, triangular in the elimination order `order_`:
  //  order_[t]   = basis position pivoted at step t
  //  pivot_row_[k] / pos_of_[k] = pivot row / order index of position k
  //  diag_[k]    = diagonal value of column k (1.0 from Factorize; real
  //                values after FT updates)
  //  ucols_[k]   = off-diagonal entries (row, value) of U column k
  //  urows_[r]   = off-diagonal entries (position k, value) of U row r
  std::vector<int> order_;
  std::vector<int> pivot_row_;
  std::vector<int> pos_of_;
  std::vector<double> diag_;
  std::vector<std::vector<std::pair<int, double>>> ucols_;
  std::vector<std::vector<std::pair<int, double>>> urows_;

  // Scratch, sized to num_rows_. workspace_ (row space) and rowwork_
  // (position space) are kept all-zero between uses; solve_ holds the last
  // FTRAN/BTRAN solution and must never be assumed clean.
  mutable std::vector<double> workspace_;
  mutable std::vector<double> solve_;
  std::vector<double> rowwork_;
};

}  // namespace vpart

#endif  // VPART_LP_FACTORIZATION_H_
