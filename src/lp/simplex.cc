#include "lp/simplex.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdlib>

#include "check/invariants.h"
#include "obs/trace.h"
#include "util/logging.h"

namespace vpart {

const char* LpStatusName(LpStatus status) {
  switch (status) {
    case LpStatus::kOptimal:
      return "OPTIMAL";
    case LpStatus::kInfeasible:
      return "INFEASIBLE";
    case LpStatus::kUnbounded:
      return "UNBOUNDED";
    case LpStatus::kIterationLimit:
      return "ITERATION_LIMIT";
    case LpStatus::kTimeLimit:
      return "TIME_LIMIT";
    case LpStatus::kNumericalFailure:
      return "NUMERICAL_FAILURE";
  }
  return "UNKNOWN";
}

SimplexSolver::SimplexSolver(const LpModel& model,
                             const SimplexOptions& options)
    : model_(model), options_(options) {
  BuildMatrix();
}

void SimplexSolver::BuildMatrix() {
  num_rows_ = model_.num_constraints();
  num_struct_ = model_.num_variables();
  const int num_logicals = num_rows_;

  // Structural columns. AddConstraint canonicalizes rows (sorted, merged,
  // zero-free), so the transpose below needs no duplicate handling.
  std::vector<std::vector<std::pair<int, double>>> cols(num_struct_);
  for (int i = 0; i < num_rows_; ++i) {
    for (const auto& [j, v] : model_.constraint(i).terms) {
      cols[j].emplace_back(i, v);
    }
  }

  col_start_.clear();
  row_index_.clear();
  value_.clear();
  lower_.clear();
  upper_.clear();
  real_cost_.clear();
  rhs_.resize(num_rows_);
  for (int i = 0; i < num_rows_; ++i) rhs_[i] = model_.constraint(i).rhs;

  auto push_column = [&](const std::vector<std::pair<int, double>>& entries,
                         double lo, double hi, double c) {
    col_start_.push_back(static_cast<int>(row_index_.size()));
    for (const auto& [i, v] : entries) {
      if (v != 0.0) {
        row_index_.push_back(i);
        value_.push_back(v);
      }
    }
    lower_.push_back(lo);
    upper_.push_back(hi);
    real_cost_.push_back(c);
  };

  for (int j = 0; j < num_struct_; ++j) {
    push_column(cols[j], model_.variable(j).lower, model_.variable(j).upper,
                model_.variable(j).objective);
  }

  // Logical column per row: a·x + s = b with sense-dependent bounds.
  for (int i = 0; i < num_rows_; ++i) {
    double lo = 0, hi = 0;
    switch (model_.constraint(i).sense) {
      case ConstraintSense::kLessEqual:
        lo = 0;
        hi = kLpInfinity;
        break;
      case ConstraintSense::kGreaterEqual:
        lo = -kLpInfinity;
        hi = 0;
        break;
      case ConstraintSense::kEqual:
        lo = hi = 0;
        break;
    }
    push_column({{i, 1.0}}, lo, hi, 0.0);
  }
  col_start_.push_back(static_cast<int>(row_index_.size()));

  num_cols_ = num_struct_ + num_logicals;
  first_artificial_ = num_cols_;
  state_.assign(num_cols_, VarState::kAtLower);
  xval_.assign(num_cols_, 0.0);
  basis_.assign(num_rows_, -1);
}

void SimplexSolver::SetBounds(
    const std::vector<std::pair<double, double>>* bound_overrides) {
  for (int j = 0; j < num_struct_; ++j) {
    if (bound_overrides != nullptr) {
      lower_[j] = (*bound_overrides)[j].first;
      upper_[j] = (*bound_overrides)[j].second;
    } else {
      lower_[j] = model_.variable(j).lower;
      upper_[j] = model_.variable(j).upper;
    }
  }
}

void SimplexSolver::TruncateArtificials() {
  if (num_cols_ == first_artificial_) return;
  row_index_.resize(col_start_[first_artificial_]);
  value_.resize(col_start_[first_artificial_]);
  col_start_.resize(first_artificial_ + 1);
  lower_.resize(first_artificial_);
  upper_.resize(first_artificial_);
  real_cost_.resize(first_artificial_);
  state_.resize(first_artificial_);
  xval_.resize(first_artificial_);
  num_cols_ = first_artificial_;
}

void SimplexSolver::ResetToCrashBasis() {
  TruncateArtificials();
  factor_synced_ = false;  // the basis changes wholesale below

  // Nonbasic start: every structural at its finite bound (preferring lower),
  // logicals basic where feasible, artificials where not.
  state_.assign(num_cols_, VarState::kAtLower);
  xval_.assign(num_cols_, 0.0);
  for (int j = 0; j < num_struct_; ++j) {
    if (std::isfinite(lower_[j])) {
      state_[j] = VarState::kAtLower;
      xval_[j] = lower_[j];
    } else if (std::isfinite(upper_[j])) {
      state_[j] = VarState::kAtUpper;
      xval_[j] = upper_[j];
    } else {
      state_[j] = VarState::kAtLower;  // free variable parked at 0
      xval_[j] = 0.0;
    }
  }

  // Row activity of the nonbasic structural start.
  std::vector<double> activity(num_rows_, 0.0);
  for (int j = 0; j < num_struct_; ++j) {
    if (xval_[j] == 0.0) continue;
    for (int k = col_start_[j]; k < col_start_[j + 1]; ++k) {
      activity[row_index_[k]] += value_[k] * xval_[j];
    }
  }

  basis_.assign(num_rows_, -1);
  std::vector<std::pair<int, double>> artificial_cols;  // (row, sign)
  for (int i = 0; i < num_rows_; ++i) {
    const int logical = num_struct_ + i;
    const double residual = rhs_[i] - activity[i];
    if (residual >= lower_[logical] - options_.feasibility_tol &&
        residual <= upper_[logical] + options_.feasibility_tol) {
      basis_[i] = logical;
      state_[logical] = VarState::kBasic;
      xval_[logical] = residual;
    } else if (residual > upper_[logical]) {
      // Park the logical at its upper bound; artificial covers the excess.
      state_[logical] = VarState::kAtUpper;
      xval_[logical] = upper_[logical];
      artificial_cols.emplace_back(i, +1.0);
    } else {
      state_[logical] = VarState::kAtLower;
      xval_[logical] = lower_[logical];
      artificial_cols.emplace_back(i, -1.0);
    }
  }

  col_start_.pop_back();  // re-open the column list for the artificials
  for (const auto& [row, sign] : artificial_cols) {
    col_start_.push_back(static_cast<int>(row_index_.size()));
    row_index_.push_back(row);
    value_.push_back(sign);
    lower_.push_back(0.0);
    upper_.push_back(kLpInfinity);
    real_cost_.push_back(0.0);
    const int j = num_cols_++;
    state_.push_back(VarState::kBasic);
    const double logical_value = xval_[num_struct_ + row];
    const double residual = rhs_[row] - activity[row] - logical_value;
    xval_.push_back(residual / sign);  // positive by construction
    basis_[row] = j;
  }
  col_start_.push_back(static_cast<int>(row_index_.size()));

  assert(static_cast<int>(col_start_.size()) == num_cols_ + 1);
}

void SimplexSolver::ResetCallCounters() {
  iterations_ = 0;
  phase1_iterations_ = 0;
  factorizations_ = 0;
  bound_flips_ = 0;
  stall_count_ = 0;
  use_bland_ = false;
  deadline_ = Deadline(options_.time_limit_seconds);
  factor_stats_base_ = factor_.stats();
  pricing_resets_base_ = devex_.resets() + dse_.resets();
  // Propagate the solver tolerances into the factorization.
  LuFactorization::Options factor_options = factor_.options();
  factor_options.pivot_tol = options_.pivot_tol;
  factor_options.markowitz_threshold = options_.markowitz_threshold;
  factor_options.refactor_interval = options_.refactor_interval;
  factor_options.fill_ratio = options_.fill_ratio;
  factor_.set_options(factor_options);
}

long SimplexSolver::MaxIterations() const {
  return options_.max_iterations > 0
             ? options_.max_iterations
             : 200L * (num_rows_ + num_cols_) + 20000L;
}

void SimplexSolver::ScatterColumn(int j, std::vector<double>& out) const {
  std::fill(out.begin(), out.end(), 0.0);
  for (int k = col_start_[j]; k < col_start_[j + 1]; ++k) {
    out[row_index_[k]] = value_[k];
  }
}

void SimplexSolver::Ftran(std::vector<double>& w) const { factor_.Ftran(w); }

void SimplexSolver::Btran(std::vector<double>& v) const { factor_.Btran(v); }

bool SimplexSolver::Refactorize() {
  // kFull-gated: refactorizations happen mid-pivot-loop; only deep traces
  // pay for the span (one relaxed atomic load otherwise).
  Span span("lp_refactorize", "lp", ObsLevel::kFull);
  if (!factor_.Factorize(col_start_, row_index_, value_, basis_, num_rows_)) {
    factor_synced_ = false;
    return false;
  }
  ++factorizations_;
  factor_synced_ = true;
  RecomputeBasicValues();
  ft_updates_since_audit_ = 0;
  if (options_.audit_level != AuditLevel::kOff) AuditResidual("refactorize");
  return true;
}

bool SimplexSolver::UpdateFactorization(int entering, int row,
                                        bool& refactorized) {
  refactorized = false;
  // The Forrest–Tomlin update keeps the factorization current in O(touched
  // entries); a rejected (unstable) update or a fired trigger collapses
  // everything into a fresh LU instead.
  if (factor_.Update(col_start_, row_index_, value_, entering, row) &&
      !factor_.NeedsRefactorization()) {
    // The pivot's incremental updates to xval_ are complete here (the
    // iteration loops update the iterate before the factorization), so the
    // periodic kFull residual audit sees a consistent state.
    if (options_.audit_level == AuditLevel::kFull &&
        ++ft_updates_since_audit_ >= options_.audit_ft_interval) {
      ft_updates_since_audit_ = 0;
      AuditResidual("ft_update");
    }
    return true;
  }
  refactorized = true;
  return Refactorize();
}

void SimplexSolver::RecomputeBasicValues() {
  std::vector<double> r = rhs_;
  for (int j = 0; j < num_cols_; ++j) {
    if (state_[j] == VarState::kBasic || xval_[j] == 0.0) continue;
    for (int k = col_start_[j]; k < col_start_[j + 1]; ++k) {
      r[row_index_[k]] -= value_[k] * xval_[j];
    }
  }
  Ftran(r);
  for (int i = 0; i < num_rows_; ++i) xval_[basis_[i]] = r[i];
}

void SimplexSolver::AuditResidual(const char* where) {
  ++audits_run_total_;
  double rhs_norm = 0.0;
  for (double b : rhs_) rhs_norm = std::max(rhs_norm, std::abs(b));
  const double residual = RowActivityResidualInf(
      num_rows_, col_start_, row_index_, value_, xval_, rhs_);
  // Well above the incremental-drift level of a healthy solve (the basic
  // values go through a fresh FTRAN at every refactorization) but far below
  // anything a genuinely wrong factorization produces.
  const double tolerance =
      std::max(1e-6, 10.0 * options_.feasibility_tol) * (1.0 + rhs_norm);
  if (!(residual <= tolerance)) {
    ++audit_failures_total_;
    VPART_LOG(Warning) << "lp audit: row-activity residual " << residual
                       << " exceeds " << tolerance << " after " << where;
  }
}

void SimplexSolver::AuditPricingWeights() {
  if (options_.use_devex && !devex_.weights().empty()) {
    ++audits_run_total_;
    if (!AllFinitePositive(devex_.weights())) {
      ++audit_failures_total_;
      VPART_LOG(Warning)
          << "lp audit: devex weight non-positive or non-finite";
    }
  }
  if (options_.use_steepest_edge && !dse_.weights().empty()) {
    ++audits_run_total_;
    if (!AllFinitePositive(dse_.weights())) {
      ++audit_failures_total_;
      VPART_LOG(Warning)
          << "lp audit: dual-steepest-edge weight non-positive or non-finite";
    }
  }
}

void SimplexSolver::ComputeReducedCosts(std::vector<double>& d) const {
  std::vector<double> pi(num_rows_, 0.0);
  for (int i = 0; i < num_rows_; ++i) pi[i] = cost_[basis_[i]];
  Btran(pi);
  d.assign(num_cols_, 0.0);
  for (int j = 0; j < num_cols_; ++j) {
    if (state_[j] == VarState::kBasic) continue;
    double dj = cost_[j];
    for (int k = col_start_[j]; k < col_start_[j + 1]; ++k) {
      dj -= pi[row_index_[k]] * value_[k];
    }
    d[j] = dj;
  }
}

double SimplexSolver::PrimalViolation(int j, double dj) const {
  if (state_[j] == VarState::kBasic) return 0.0;
  if (lower_[j] == upper_[j]) return 0.0;  // fixed: cannot move
  if (state_[j] == VarState::kAtLower) {
    // Can increase (or, for free variables parked at 0, also decrease).
    double violation = -dj;
    if (!std::isfinite(lower_[j]) && dj > options_.optimality_tol) {
      violation = dj;  // free variable can decrease too
    }
    return violation;
  }
  return dj;
}

int SimplexSolver::PricePrimal(const std::vector<double>& d) const {
  int best = -1;
  double best_score = 0.0;
  for (int j = 0; j < num_cols_; ++j) {
    const double violation = PrimalViolation(j, d[j]);
    if (violation <= options_.optimality_tol) continue;
    // Devex scores by d²/w (steepest edge within the reference framework);
    // with devex off this degrades to the classic Dantzig rule.
    const double score =
        options_.use_devex ? devex_.Score(j, violation) : violation;
    if (best < 0 || score > best_score) {
      best_score = score;
      best = j;
    }
  }
  return best;
}

int SimplexSolver::PriceBland(const std::vector<double>& d) const {
  for (int j = 0; j < num_cols_; ++j) {
    if (state_[j] == VarState::kBasic) continue;
    if (lower_[j] == upper_[j]) continue;
    if (state_[j] == VarState::kAtLower) {
      if (d[j] < -options_.optimality_tol) return j;
      if (!std::isfinite(lower_[j]) && d[j] > options_.optimality_tol)
        return j;
    } else {
      if (d[j] > options_.optimality_tol) return j;
    }
  }
  return -1;
}

double SimplexSolver::PhaseObjective() const {
  double obj = 0.0;
  for (int j = 0; j < num_cols_; ++j) obj += cost_[j] * xval_[j];
  return obj;
}

LpStatus SimplexSolver::RunPhase(long max_iterations) {
  std::vector<double> d;
  std::vector<double> w(num_rows_);
  std::vector<double> rho(num_rows_);
  std::vector<double> alpha_row(num_cols_, 0.0);
  double last_objective = PhaseObjective();

  // Reduced costs are computed once and maintained incrementally across
  // pivots (d'_j = d_j - (d_q/alpha_q)·alpha_j over the pivot row, which
  // devex needs anyway); they are recomputed from scratch after every
  // refactorization, and re-verified before any optimality claim.
  ComputeReducedCosts(d);
  bool d_fresh = true;
  if (options_.use_devex) devex_.Reset(num_cols_);

  while (true) {
    if (iterations_ >= max_iterations) return LpStatus::kIterationLimit;
    if ((iterations_ & 63) == 0 && deadline_.Expired()) {
      return LpStatus::kTimeLimit;
    }
    const int entering = use_bland_ ? PriceBland(d) : PricePrimal(d);
    if (entering < 0) {
      // Incrementally maintained reduced costs drift; only a freshly
      // recomputed vector may certify optimality.
      if (d_fresh) return LpStatus::kOptimal;
      ComputeReducedCosts(d);
      d_fresh = true;
      continue;
    }

    // Direction: +1 when the entering variable increases.
    int dir;
    if (state_[entering] == VarState::kAtLower) {
      dir = (d[entering] < 0 || std::isfinite(lower_[entering])) ? +1 : -1;
      if (!std::isfinite(lower_[entering]) && d[entering] > 0) dir = -1;
    } else {
      dir = -1;
    }

    ScatterColumn(entering, w);
    Ftran(w);

    // Ratio test.
    double best_delta = kLpInfinity;
    int leaving_row = -1;
    double leaving_abs = 0.0;
    bool leaving_to_upper = false;
    for (int i = 0; i < num_rows_; ++i) {
      const double wi = w[i];
      if (std::abs(wi) <= options_.pivot_tol) continue;
      const int b = basis_[i];
      const double rate = -dir * wi;  // d(x_b)/d(delta)
      double limit;
      bool to_upper;
      if (rate < 0) {
        if (!std::isfinite(lower_[b])) continue;
        limit = (xval_[b] - lower_[b]) / (-rate);
        to_upper = false;
      } else {
        if (!std::isfinite(upper_[b])) continue;
        limit = (upper_[b] - xval_[b]) / rate;
        to_upper = true;
      }
      if (limit < 0) limit = 0;  // tolerate tiny infeasibilities
      const bool better =
          limit < best_delta - 1e-12 ||
          (limit < best_delta + 1e-12 && std::abs(wi) > leaving_abs);
      if (better) {
        best_delta = limit;
        leaving_row = i;
        leaving_abs = std::abs(wi);
        leaving_to_upper = to_upper;
      }
    }
    double bound_delta = kLpInfinity;
    if (std::isfinite(lower_[entering]) && std::isfinite(upper_[entering])) {
      bound_delta = upper_[entering] - lower_[entering];
    }

    const double delta = std::min(best_delta, bound_delta);
    if (!std::isfinite(delta)) return LpStatus::kUnbounded;

    // Apply the step.
    if (delta != 0.0) {
      for (int i = 0; i < num_rows_; ++i) {
        if (w[i] != 0.0) xval_[basis_[i]] -= dir * w[i] * delta;
      }
      xval_[entering] += dir * delta;
    }

    if (bound_delta <= best_delta + 1e-12 && bound_delta < kLpInfinity &&
        delta == bound_delta) {
      // Bound flip: no basis change, reduced costs unchanged.
      state_[entering] = (state_[entering] == VarState::kAtLower)
                             ? VarState::kAtUpper
                             : VarState::kAtLower;
      xval_[entering] = (state_[entering] == VarState::kAtUpper)
                            ? upper_[entering]
                            : lower_[entering];
      ++bound_flips_;
    } else {
      assert(leaving_row >= 0);
      const int leaving = basis_[leaving_row];

      // Pivot row alpha (one BTRAN + column dots): feeds both the
      // incremental reduced-cost update and the devex weights.
      std::fill(rho.begin(), rho.end(), 0.0);
      rho[leaving_row] = 1.0;
      Btran(rho);
      for (int j = 0; j < num_cols_; ++j) {
        alpha_row[j] = 0.0;
        if (state_[j] == VarState::kBasic) continue;
        double a = 0.0;
        for (int k = col_start_[j]; k < col_start_[j + 1]; ++k) {
          a += rho[row_index_[k]] * value_[k];
        }
        alpha_row[j] = a;
      }
      const double alpha_q = w[leaving_row];
      const double dual_step = d[entering] / alpha_q;
      if (dual_step != 0.0) {
        for (int j = 0; j < num_cols_; ++j) {
          if (alpha_row[j] != 0.0) d[j] -= dual_step * alpha_row[j];
        }
      }
      d[entering] = 0.0;
      d[leaving] = -dual_step;
      d_fresh = false;
      if (options_.use_devex && !use_bland_) {
        devex_.UpdateOnPivot(alpha_row, entering, alpha_q, leaving);
      }

      state_[leaving] =
          leaving_to_upper ? VarState::kAtUpper : VarState::kAtLower;
      xval_[leaving] = leaving_to_upper ? upper_[leaving] : lower_[leaving];
      state_[entering] = VarState::kBasic;
      basis_[leaving_row] = entering;

      bool refactorized = false;
      if (!UpdateFactorization(entering, leaving_row, refactorized)) {
        return LpStatus::kNumericalFailure;
      }
      if (refactorized) {
        ComputeReducedCosts(d);
        d_fresh = true;
      }
    }

    ++iterations_;

    // Stall detection for anti-cycling.
    const double objective = PhaseObjective();
    if (objective < last_objective - 1e-12 * (1.0 + std::abs(last_objective))) {
      stall_count_ = 0;
      last_objective = objective;
    } else if (++stall_count_ > options_.stall_threshold && !use_bland_) {
      use_bland_ = true;
      ComputeReducedCosts(d);  // a clean slate for Bland's rule
      d_fresh = true;
    }
  }
}

LpResult SimplexSolver::FinishResult(LpStatus status, bool warm,
                                     bool expose_partial) {
  if (options_.audit_level == AuditLevel::kFull) AuditPricingWeights();
  LpResult result;
  result.status = status;
  result.iterations = iterations_;
  result.phase1_iterations = phase1_iterations_;
  result.dual_iterations = warm ? iterations_ : 0;
  result.factorizations = factorizations_;
  const LuFactorization::Stats& fs = factor_.stats();
  result.ft_updates = fs.ft_updates - factor_stats_base_.ft_updates;
  result.refactor_updates =
      fs.refactor_updates - factor_stats_base_.refactor_updates;
  result.refactor_fill = fs.refactor_fill - factor_stats_base_.refactor_fill;
  result.refactor_stability =
      fs.refactor_stability - factor_stats_base_.refactor_stability;
  result.bound_flips = bound_flips_;
  result.se_resets = devex_.resets() + dse_.resets() - pricing_resets_base_;
  result.audits_run = audits_run_total_ - audits_run_reported_;
  result.audit_failures = audit_failures_total_ - audit_failures_reported_;
  audits_run_reported_ = audits_run_total_;
  audit_failures_reported_ = audit_failures_total_;
  result.warm_started = warm;
  // Limit-stop iterates are only exposed when the caller says they are
  // primal feasible (a phase-2 primal stop); a phase-1 or dual stop leaves
  // a bound-violating iterate that must never look like an answer.
  if (status == LpStatus::kOptimal ||
      (expose_partial && (status == LpStatus::kIterationLimit ||
                          status == LpStatus::kTimeLimit))) {
    result.values.assign(xval_.begin(), xval_.begin() + num_struct_);
    result.objective = model_.EvaluateObjective(result.values);
  }
  basis_ready_ = status == LpStatus::kOptimal;
  return result;
}

LpResult SimplexSolver::Solve() {
  ResetCallCounters();
  ResetToCrashBasis();
  if (!Refactorize()) {
    return FinishResult(LpStatus::kNumericalFailure, /*warm=*/false,
                        /*expose_partial=*/false);
  }
  const long max_iterations = MaxIterations();

  // Phase 1: drive artificials to zero.
  const bool has_artificials = num_cols_ > first_artificial_;
  if (has_artificials) {
    cost_.assign(num_cols_, 0.0);
    for (int j = first_artificial_; j < num_cols_; ++j) cost_[j] = 1.0;
    LpStatus status = RunPhase(max_iterations);
    phase1_iterations_ = iterations_;
    if (status == LpStatus::kNumericalFailure ||
        status == LpStatus::kIterationLimit ||
        status == LpStatus::kTimeLimit) {
      return FinishResult(status, /*warm=*/false,
                          /*expose_partial=*/false);  // phase-1 iterate
    }
    // Unbounded cannot happen in phase 1 (objective bounded below by 0).
    const double infeasibility = PhaseObjective();
    if (infeasibility >
            options_.feasibility_tol * (1.0 + std::abs(infeasibility)) &&
        infeasibility > 1e-6) {
      return FinishResult(LpStatus::kInfeasible, /*warm=*/false,
                          /*expose_partial=*/false);
    }
    // Fix artificials at zero for phase 2.
    for (int j = first_artificial_; j < num_cols_; ++j) {
      lower_[j] = upper_[j] = 0.0;
      if (state_[j] != VarState::kBasic) xval_[j] = 0.0;
    }
  }

  cost_ = real_cost_;
  cost_.resize(num_cols_, 0.0);
  return FinishResult(RunPhase(max_iterations), /*warm=*/false,
                      /*expose_partial=*/true);  // phase-2 iterate is feasible
}

LpResult SimplexSolver::SolveWithRetry() {
  Span span("lp_solve", "lp", ObsLevel::kFull);
  LpResult result = Solve();
  if (result.status == LpStatus::kNumericalFailure) {
    // One retry with tighter tolerances: a short Forrest–Tomlin update
    // window and a stricter pivot floor keep the factorization accurate
    // when the default schedule drifted.
    const SimplexOptions saved = options_;
    options_.refactor_interval = 20;
    options_.pivot_tol = 1e-10;
    result = Solve();
    options_ = saved;
  }
  return result;
}

Basis SimplexSolver::SaveBasis() const {
  Basis basis;
  basis.basic_of_row_ = basis_;
  basis.state_.resize(first_artificial_);
  for (int j = 0; j < first_artificial_; ++j) {
    basis.state_[j] = static_cast<uint8_t>(state_[j]);
  }
  basis.valid_ = basis_ready_;
  for (int j : basis_) {
    // A basic phase-1 artificial (degenerate at zero) cannot be reproduced
    // from the struct+logical snapshot; such bases are not reusable.
    if (j < 0 || j >= first_artificial_) basis.valid_ = false;
  }
  return basis;
}

bool SimplexSolver::LoadBasis(const Basis& basis) {
  if (!basis.valid_ || basis.num_rows() != num_rows_ ||
      static_cast<int>(basis.state_.size()) != first_artificial_) {
    return false;
  }
  if (options_.audit_level != AuditLevel::kOff) {
    // Basis-header audit: each row's basic column in range and unique, and
    // the snapshot's state vector agreeing with the header. A corrupt
    // snapshot is counted as an audit failure and rejected — the caller's
    // ladder falls back to a cold solve instead of factorizing garbage.
    ++audits_run_total_;
    bool consistent =
        BasisHeaderConsistent(basis.basic_of_row_, first_artificial_);
    if (consistent) {
      for (int col : basis.basic_of_row_) {
        if (basis.state_[col] != static_cast<uint8_t>(VarState::kBasic)) {
          consistent = false;
          break;
        }
      }
    }
    if (!consistent) {
      ++audit_failures_total_;
      VPART_LOG(Warning) << "lp audit: rejected inconsistent basis snapshot";
      return false;
    }
  }
  TruncateArtificials();
  // Loading the basis the solver already holds (the common plunge case:
  // a child reoptimizes right after its parent solved) keeps the live
  // factorization; anything else forces a rebuild on the next Reoptimize.
  factor_synced_ = factor_synced_ && basis.basic_of_row_ == basis_;
  basis_ = basis.basic_of_row_;
  for (int j = 0; j < first_artificial_; ++j) {
    state_[j] = static_cast<VarState>(basis.state_[j]);
  }
  basis_ready_ = true;
  return true;
}

LpStatus SimplexSolver::RunDual(long max_iterations) {
  std::vector<double> d;
  std::vector<double> rho(num_rows_);
  std::vector<double> alpha(num_cols_, 0.0);
  std::vector<double> w(num_rows_);
  std::vector<double> flip_col(num_rows_);
  struct Candidate {
    int j;
    double ratio;
    double abs_alpha;
  };
  std::vector<Candidate> cands;
  std::vector<int> flips;
  double last_infeasibility = kLpInfinity;
  int consecutive_repairs = 0;

  // Reduced costs are computed once and updated incrementally per pivot
  // (d'_j = d_j - (d_q/alpha_q)*alpha_j over the already-computed alpha
  // row); every refactorization recomputes them from scratch, which bounds
  // the incremental drift at refactor_interval pivots.
  ComputeReducedCosts(d);
  if (options_.use_steepest_edge) dse_.Reset(num_rows_);

  while (true) {
    if (iterations_ >= max_iterations) return LpStatus::kIterationLimit;
    if ((iterations_ & 63) == 0 && deadline_.Expired()) {
      return LpStatus::kTimeLimit;
    }

    // Leaving row: dual steepest edge scores violation²/gamma (steepest
    // ascent in the dual); plain mode takes the most infeasible row, and
    // Bland mode the infeasible row with the smallest basic column index.
    int r = -1;
    double best_score = 0.0;
    double total_infeasibility = 0.0;
    for (int i = 0; i < num_rows_; ++i) {
      const int b = basis_[i];
      double violation = 0.0;
      if (std::isfinite(lower_[b]) && xval_[b] < lower_[b]) {
        violation = lower_[b] - xval_[b];
      } else if (std::isfinite(upper_[b]) && xval_[b] > upper_[b]) {
        violation = xval_[b] - upper_[b];
      }
      total_infeasibility += violation;
      if (violation <= options_.feasibility_tol) continue;
      if (use_bland_) {
        if (r < 0 || b < basis_[r]) r = i;
      } else {
        const double score = options_.use_steepest_edge
                                 ? dse_.Score(i, violation)
                                 : violation;
        if (score > best_score) {
          best_score = score;
          r = i;
        }
      }
    }
    if (r < 0) return LpStatus::kOptimal;  // primal + dual feasible

    // Degeneracy watch: no strict progress for stall_threshold pivots
    // switches both selection rules to Bland's. The isfinite guard seeds
    // the baseline on the first pivot (inf - inf is NaN, which would
    // otherwise make this branch unreachable).
    if (!std::isfinite(last_infeasibility) ||
        total_infeasibility <
            last_infeasibility - 1e-12 * (1.0 + last_infeasibility)) {
      stall_count_ = 0;
      last_infeasibility = total_infeasibility;
    } else if (++stall_count_ > options_.stall_threshold) {
      use_bland_ = true;
    }

    const int leaving = basis_[r];
    const bool below =
        std::isfinite(lower_[leaving]) && xval_[leaving] < lower_[leaving];
    // infeas > 0 when the basic variable sits above its upper bound.
    double infeas = below ? xval_[leaving] - lower_[leaving]
                          : xval_[leaving] - upper_[leaving];

    // Row r of B^{-1}A: alpha_j = rho·a_j with rho = B^{-T} e_r. The full
    // row (not just the eligible candidates) feeds the post-pivot update.
    std::fill(rho.begin(), rho.end(), 0.0);
    rho[r] = 1.0;
    Btran(rho);

    // Dual ratio test. Short step (Bland, or bound flips disabled): the
    // entering column minimizes |d_j|/|alpha_j| among the sign-eligible
    // nonbasics. Long step: collect every eligible breakpoint instead and
    // walk them below.
    const bool long_step = options_.use_bound_flips && !use_bland_;
    cands.clear();
    int entering = -1;
    double best_ratio = kLpInfinity;
    double best_alpha = 0.0;
    double entering_alpha = 0.0;
    for (int j = 0; j < num_cols_; ++j) {
      alpha[j] = 0.0;
      if (state_[j] == VarState::kBasic) continue;
      if (lower_[j] == upper_[j]) continue;  // fixed: cannot move
      double a = 0.0;
      for (int k = col_start_[j]; k < col_start_[j + 1]; ++k) {
        a += rho[row_index_[k]] * value_[k];
      }
      alpha[j] = a;
      if (std::abs(a) <= options_.pivot_tol) continue;
      // The entering step is theta = infeas / alpha; its sign must move the
      // entering variable off its bound in a feasible direction.
      const bool at_lower = state_[j] == VarState::kAtLower;
      const bool free_var =
          !std::isfinite(lower_[j]) && !std::isfinite(upper_[j]);
      const double theta_sign = infeas / a;
      if (!free_var) {
        if (at_lower && theta_sign <= 0) continue;
        if (!at_lower && theta_sign >= 0) continue;
      }
      double numerator;
      if (free_var) {
        numerator = std::abs(d[j]);
      } else if (at_lower) {
        numerator = std::max(d[j], 0.0);  // clamp tolerance-level noise
      } else {
        numerator = std::max(-d[j], 0.0);
      }
      const double ratio = numerator / std::abs(a);
      if (long_step) {
        cands.push_back({j, ratio, std::abs(a)});
        continue;
      }
      const bool better =
          use_bland_
              ? ratio < best_ratio - 1e-12
              : (ratio < best_ratio - 1e-12 ||
                 (ratio < best_ratio + 1e-12 &&
                  std::abs(a) > std::abs(best_alpha)));
      if (better) {
        best_ratio = ratio;
        best_alpha = a;
        entering = j;
        entering_alpha = a;
      }
    }

    // Long-step (bound-flipping) walk: passing a boxed breakpoint flips
    // that variable across its box and reduces the dual slope by
    // |alpha|·span; the first breakpoint the remaining slope cannot pass
    // enters the basis. The entering ratio bounds every flipped ratio, so
    // all flipped reduced costs change sign consistently with their new
    // bound once the pivot's dual step is applied.
    flips.clear();
    if (long_step) {
      std::sort(cands.begin(), cands.end(),
                [](const Candidate& a, const Candidate& b) {
                  if (a.ratio != b.ratio) return a.ratio < b.ratio;
                  if (a.abs_alpha != b.abs_alpha) {
                    return a.abs_alpha > b.abs_alpha;
                  }
                  return a.j < b.j;
                });
      double slope = std::abs(infeas);
      for (const Candidate& cand : cands) {
        const int j = cand.j;
        const bool boxed =
            std::isfinite(lower_[j]) && std::isfinite(upper_[j]);
        const double gain =
            boxed ? (upper_[j] - lower_[j]) * cand.abs_alpha : kLpInfinity;
        if (!boxed || slope - gain <= options_.feasibility_tol) {
          entering = j;
          entering_alpha = alpha[j];
          break;
        }
        flips.push_back(j);
        slope -= gain;
      }
    }
    if (entering < 0) {
      // Dual unbounded: no eligible entering column, or (long step) every
      // breakpoint flipped with slope to spare — either way the violated
      // row cannot be repaired, proving the LP primal infeasible (sound
      // because the start basis was verified dual feasible). Walked flips
      // were never applied; they only existed on the walk.
      return LpStatus::kInfeasible;
    }

    // FTRAN the entering column and cross-check the pivot against the
    // BTRAN row *before* any state changes, so a repair retries cleanly.
    ScatterColumn(entering, w);
    Ftran(w);
    if (std::abs(w[r]) <= options_.pivot_tol ||
        std::abs(w[r] - entering_alpha) >
            0.5 * std::abs(w[r]) + options_.feasibility_tol) {
      // FTRAN and BTRAN disagree about the pivot: the factorization has
      // drifted beyond trust.
      factor_.MarkUnstable();
      if (++consecutive_repairs > 2 || !Refactorize()) {
        return LpStatus::kNumericalFailure;
      }
      ComputeReducedCosts(d);  // fresh factorization: re-price from scratch
      continue;
    }
    consecutive_repairs = 0;

    // Apply the harvested bound flips: nonbasics jump across their box in
    // bulk, the basics absorb the combined column delta via one FTRAN.
    if (!flips.empty()) {
      std::fill(flip_col.begin(), flip_col.end(), 0.0);
      for (int j : flips) {
        const bool to_upper = state_[j] == VarState::kAtLower;
        const double delta =
            to_upper ? upper_[j] - lower_[j] : lower_[j] - upper_[j];
        state_[j] = to_upper ? VarState::kAtUpper : VarState::kAtLower;
        xval_[j] = to_upper ? upper_[j] : lower_[j];
        for (int k = col_start_[j]; k < col_start_[j + 1]; ++k) {
          flip_col[row_index_[k]] += value_[k] * delta;
        }
        ++bound_flips_;
      }
      Ftran(flip_col);
      for (int i = 0; i < num_rows_; ++i) {
        if (flip_col[i] != 0.0) xval_[basis_[i]] -= flip_col[i];
      }
      // The leaving variable's violation shrank by the flipped mass; a
      // numerically crossed sign degrades to a degenerate pivot.
      infeas = below ? xval_[leaving] - lower_[leaving]
                     : xval_[leaving] - upper_[leaving];
      if (below ? infeas > 0 : infeas < 0) infeas = 0;
    }

    const double theta = infeas / w[r];
    for (int i = 0; i < num_rows_; ++i) {
      if (w[i] != 0.0) xval_[basis_[i]] -= theta * w[i];
    }
    xval_[entering] += theta;
    xval_[leaving] = below ? lower_[leaving] : upper_[leaving];
    state_[leaving] = below ? VarState::kAtLower : VarState::kAtUpper;

    // Incremental dual update over the alpha row, before the basis flips:
    // the entering column's reduced cost zeroes out, the leaving variable
    // picks up -dual_step, everything else shifts by dual_step * alpha_j.
    const double dual_step = d[entering] / entering_alpha;
    if (dual_step != 0.0) {
      for (int j = 0; j < num_cols_; ++j) {
        if (alpha[j] != 0.0) d[j] -= dual_step * alpha[j];
      }
    }
    d[entering] = 0.0;
    d[leaving] = -dual_step;

    if (options_.use_steepest_edge && !use_bland_) {
      dse_.UpdateOnPivot(w, r, w[r]);
    }

    state_[entering] = VarState::kBasic;
    basis_[r] = entering;

    bool refactorized = false;
    if (!UpdateFactorization(entering, r, refactorized)) {
      return LpStatus::kNumericalFailure;
    }
    if (refactorized) ComputeReducedCosts(d);
    ++iterations_;
  }
}

LpResult SimplexSolver::Reoptimize() {
  Span span("lp_reoptimize", "lp", ObsLevel::kFull);
  ResetCallCounters();
  // Every bail-out below reports the same "warm path unusable" result;
  // the caller's ladder then falls back to a cold Solve().
  auto fail = [this]() {
    return FinishResult(LpStatus::kNumericalFailure, /*warm=*/true,
                        /*expose_partial=*/false);
  };
  if (!basis_ready_) return fail();
  for (int j : basis_) {
    if (j < 0 || j >= first_artificial_) return fail();
  }
  TruncateArtificials();

  // Snap nonbasic variables onto the (possibly changed) bounds. States that
  // no longer make sense (at-upper with the bound gone) degrade to the
  // nearest finite bound, or 0 for free variables.
  for (int j = 0; j < num_cols_; ++j) {
    if (state_[j] == VarState::kBasic) continue;
    if (state_[j] == VarState::kAtUpper && !std::isfinite(upper_[j])) {
      state_[j] = VarState::kAtLower;
    }
    if (state_[j] == VarState::kAtLower && !std::isfinite(lower_[j]) &&
        std::isfinite(upper_[j])) {
      // Keep the free-at-zero convention only for doubly-infinite bounds.
      state_[j] = VarState::kAtUpper;
    }
    xval_[j] = state_[j] == VarState::kAtUpper
                   ? upper_[j]
                   : (std::isfinite(lower_[j]) ? lower_[j] : 0.0);
  }

  cost_ = real_cost_;
  // Reuse the live factorization when the loaded basis is the one the
  // solver already factorized (the plunging-child fast path); only the
  // basic values need recomputing under the new bounds. A stale, invalid,
  // or trigger-due factorization is rebuilt instead.
  if (!factor_synced_ || !factor_.valid() || factor_.NeedsRefactorization()) {
    if (!Refactorize()) return fail();
  } else {
    RecomputeBasicValues();
  }

  // The dual simplex needs a dual-feasible start; the parent's optimal
  // basis is one (bound changes leave reduced costs untouched), but verify
  // within a loosened tolerance so a drifted snapshot falls back cold
  // instead of "proving" a wrong infeasibility.
  std::vector<double> d;
  ComputeReducedCosts(d);
  const double dual_tol = 10.0 * options_.optimality_tol;
  for (int j = 0; j < num_cols_; ++j) {
    if (state_[j] == VarState::kBasic) continue;
    if (lower_[j] == upper_[j]) continue;
    const bool free_var =
        !std::isfinite(lower_[j]) && !std::isfinite(upper_[j]);
    if (free_var) {
      if (std::abs(d[j]) > dual_tol) return fail();
    } else if (state_[j] == VarState::kAtLower ? d[j] < -dual_tol
                                               : d[j] > dual_tol) {
      return fail();
    }
  }

  return FinishResult(RunDual(MaxIterations()), /*warm=*/true,
                      /*expose_partial=*/false);  // dual stops are infeasible
}

LpResult SolveLp(const LpModel& model, const SimplexOptions& options,
                 const std::vector<std::pair<double, double>>*
                     bound_overrides) {
  SimplexSolver solver(model, options);
  solver.SetBounds(bound_overrides);
  return solver.SolveWithRetry();
}

}  // namespace vpart
