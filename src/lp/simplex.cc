#include "lp/simplex.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdlib>

#include "util/logging.h"
#include "util/stopwatch.h"

namespace vpart {

const char* LpStatusName(LpStatus status) {
  switch (status) {
    case LpStatus::kOptimal:
      return "OPTIMAL";
    case LpStatus::kInfeasible:
      return "INFEASIBLE";
    case LpStatus::kUnbounded:
      return "UNBOUNDED";
    case LpStatus::kIterationLimit:
      return "ITERATION_LIMIT";
    case LpStatus::kNumericalFailure:
      return "NUMERICAL_FAILURE";
  }
  return "UNKNOWN";
}

namespace {

/// Variable status in the simplex dictionary.
enum class VarState : uint8_t { kBasic, kAtLower, kAtUpper };

/// One elementary transformation of the product-form inverse: the basis
/// changed by bringing the (FTRAN-ed) column `w` into position `row`.
struct Eta {
  int row = -1;
  double pivot = 0.0;                           // w[row]
  std::vector<std::pair<int, double>> other;    // (i, w[i]) for i != row
};

class SimplexSolver {
 public:
  SimplexSolver(const LpModel& model, const SimplexOptions& options,
                const std::vector<std::pair<double, double>>* bound_overrides)
      : model_(model), options_(options),
        deadline_(options.time_limit_seconds) {
    Build(bound_overrides);
  }

  LpResult Solve();

 private:
  // --- setup -------------------------------------------------------------
  void Build(const std::vector<std::pair<double, double>>* bound_overrides);

  // --- linear algebra over the product-form inverse ----------------------
  void Ftran(std::vector<double>& w) const;   // w := B^{-1} w
  void Btran(std::vector<double>& v) const;   // v := B^{-T} v
  void ScatterColumn(int j, std::vector<double>& out) const;
  bool Refactorize();
  void RecomputeBasicValues();

  // --- iteration ---------------------------------------------------------
  int PriceDantzig(const std::vector<double>& d) const;
  int PriceBland(const std::vector<double>& d) const;
  void ComputeReducedCosts(std::vector<double>& d) const;
  // Returns kOptimal / kUnbounded / kIterationLimit / kNumericalFailure for
  // the current phase's cost vector.
  LpStatus RunPhase(long max_iterations);

  double PhaseObjective() const;

  // --- problem data ------------------------------------------------------
  const LpModel& model_;
  SimplexOptions options_;
  Deadline deadline_;

  int num_rows_ = 0;
  int num_struct_ = 0;
  int num_cols_ = 0;  // struct + logicals + artificials

  // CSC matrix over all columns.
  std::vector<int> col_start_;
  std::vector<int> row_index_;
  std::vector<double> value_;

  std::vector<double> lower_, upper_;
  std::vector<double> cost_;          // active phase cost
  std::vector<double> real_cost_;     // phase-2 cost
  std::vector<double> rhs_;
  int first_artificial_ = 0;          // columns >= this are artificial

  // --- simplex state -----------------------------------------------------
  std::vector<int> basis_;            // row -> column
  std::vector<VarState> state_;       // column -> state
  std::vector<double> xval_;          // column -> current value
  std::vector<Eta> etas_;
  long iterations_ = 0;
  long phase1_iterations_ = 0;
  long stall_count_ = 0;
  bool use_bland_ = false;
};

void SimplexSolver::Build(
    const std::vector<std::pair<double, double>>* bound_overrides) {
  num_rows_ = model_.num_constraints();
  num_struct_ = model_.num_variables();
  const int num_logicals = num_rows_;

  // Structural columns, aggregating duplicate (row, col) entries.
  std::vector<std::vector<std::pair<int, double>>> cols(num_struct_);
  for (int i = 0; i < num_rows_; ++i) {
    for (const auto& [j, v] : model_.constraint(i).terms) {
      cols[j].emplace_back(i, v);
    }
  }

  col_start_.clear();
  row_index_.clear();
  value_.clear();
  lower_.clear();
  upper_.clear();
  real_cost_.clear();
  rhs_.resize(num_rows_);
  for (int i = 0; i < num_rows_; ++i) rhs_[i] = model_.constraint(i).rhs;

  auto push_column = [&](const std::vector<std::pair<int, double>>& entries,
                         double lo, double hi, double c) {
    col_start_.push_back(static_cast<int>(row_index_.size()));
    for (const auto& [i, v] : entries) {
      if (v != 0.0) {
        row_index_.push_back(i);
        value_.push_back(v);
      }
    }
    lower_.push_back(lo);
    upper_.push_back(hi);
    real_cost_.push_back(c);
  };

  for (int j = 0; j < num_struct_; ++j) {
    // Merge duplicates.
    auto& entries = cols[j];
    std::sort(entries.begin(), entries.end());
    std::vector<std::pair<int, double>> merged;
    for (const auto& [i, v] : entries) {
      if (!merged.empty() && merged.back().first == i) {
        merged.back().second += v;
      } else {
        merged.emplace_back(i, v);
      }
    }
    double lo = model_.variable(j).lower;
    double hi = model_.variable(j).upper;
    if (bound_overrides != nullptr) {
      lo = (*bound_overrides)[j].first;
      hi = (*bound_overrides)[j].second;
    }
    push_column(merged, lo, hi, model_.variable(j).objective);
  }

  // Logical column per row: a·x + s = b with sense-dependent bounds.
  for (int i = 0; i < num_rows_; ++i) {
    double lo = 0, hi = 0;
    switch (model_.constraint(i).sense) {
      case ConstraintSense::kLessEqual:
        lo = 0;
        hi = kLpInfinity;
        break;
      case ConstraintSense::kGreaterEqual:
        lo = -kLpInfinity;
        hi = 0;
        break;
      case ConstraintSense::kEqual:
        lo = hi = 0;
        break;
    }
    push_column({{i, 1.0}}, lo, hi, 0.0);
  }

  num_cols_ = num_struct_ + num_logicals;
  first_artificial_ = num_cols_;

  // Nonbasic start: every structural at its finite bound (preferring lower),
  // logicals basic where feasible, artificials where not.
  state_.assign(num_cols_, VarState::kAtLower);
  xval_.assign(num_cols_, 0.0);
  for (int j = 0; j < num_struct_; ++j) {
    if (std::isfinite(lower_[j])) {
      state_[j] = VarState::kAtLower;
      xval_[j] = lower_[j];
    } else if (std::isfinite(upper_[j])) {
      state_[j] = VarState::kAtUpper;
      xval_[j] = upper_[j];
    } else {
      state_[j] = VarState::kAtLower;  // free variable parked at 0
      xval_[j] = 0.0;
    }
  }

  // Row activity of the nonbasic structural start.
  std::vector<double> activity(num_rows_, 0.0);
  for (int j = 0; j < num_struct_; ++j) {
    if (xval_[j] == 0.0) continue;
    for (int k = col_start_[j]; k < col_start_[j + 1]; ++k) {
      activity[row_index_[k]] += value_[k] * xval_[j];
    }
  }

  basis_.assign(num_rows_, -1);
  std::vector<std::pair<int, double>> artificial_cols;  // (row, sign)
  for (int i = 0; i < num_rows_; ++i) {
    const int logical = num_struct_ + i;
    const double residual = rhs_[i] - activity[i];
    if (residual >= lower_[logical] - options_.feasibility_tol &&
        residual <= upper_[logical] + options_.feasibility_tol) {
      basis_[i] = logical;
      state_[logical] = VarState::kBasic;
      xval_[logical] = residual;
    } else if (residual > upper_[logical]) {
      // Park the logical at its upper bound; artificial covers the excess.
      state_[logical] = VarState::kAtUpper;
      xval_[logical] = upper_[logical];
      artificial_cols.emplace_back(i, +1.0);
    } else {
      state_[logical] = VarState::kAtLower;
      xval_[logical] = lower_[logical];
      artificial_cols.emplace_back(i, -1.0);
    }
  }

  for (const auto& [row, sign] : artificial_cols) {
    col_start_.push_back(static_cast<int>(row_index_.size()));
    row_index_.push_back(row);
    value_.push_back(sign);
    lower_.push_back(0.0);
    upper_.push_back(kLpInfinity);
    real_cost_.push_back(0.0);
    const int j = num_cols_++;
    state_.push_back(VarState::kBasic);
    const double logical_value = xval_[num_struct_ + row];
    const double residual = rhs_[row] - activity[row] - logical_value;
    xval_.push_back(residual / sign);  // positive by construction
    basis_[row] = j;
    if (sign < 0) {
      // The basis starts as a ±1 diagonal, not the identity; a trivial eta
      // encodes the -1 so FTRAN/BTRAN see the true inverse.
      Eta eta;
      eta.row = row;
      eta.pivot = sign;
      etas_.push_back(std::move(eta));
    }
  }
  col_start_.push_back(static_cast<int>(row_index_.size()));

  assert(static_cast<int>(col_start_.size()) == num_cols_ + 1);
}

void SimplexSolver::ScatterColumn(int j, std::vector<double>& out) const {
  std::fill(out.begin(), out.end(), 0.0);
  for (int k = col_start_[j]; k < col_start_[j + 1]; ++k) {
    out[row_index_[k]] = value_[k];
  }
}

void SimplexSolver::Ftran(std::vector<double>& w) const {
  for (const Eta& eta : etas_) {
    const double wr = w[eta.row];
    if (wr == 0.0) continue;
    const double piv = wr / eta.pivot;
    w[eta.row] = piv;
    for (const auto& [i, v] : eta.other) w[i] -= v * piv;
  }
}

void SimplexSolver::Btran(std::vector<double>& v) const {
  for (auto it = etas_.rbegin(); it != etas_.rend(); ++it) {
    double dot = 0.0;
    for (const auto& [i, val] : it->other) dot += val * v[i];
    v[it->row] = (v[it->row] - dot) / it->pivot;
  }
}

bool SimplexSolver::Refactorize() {
  std::vector<int> old_basis = basis_;
  etas_.clear();
  std::vector<bool> pivoted(num_rows_, false);
  std::vector<int> new_basis(num_rows_, -1);

  // Order: unit columns (logicals/artificials) first, then structural by
  // sparsity — a cheap triangularity heuristic.
  std::vector<int> order;
  order.reserve(old_basis.size());
  for (int j : old_basis) {
    if (j >= num_struct_) order.push_back(j);
  }
  std::vector<int> structural;
  for (int j : old_basis) {
    if (j < num_struct_) structural.push_back(j);
  }
  std::sort(structural.begin(), structural.end(), [&](int a, int b) {
    return (col_start_[a + 1] - col_start_[a]) <
           (col_start_[b + 1] - col_start_[b]);
  });
  order.insert(order.end(), structural.begin(), structural.end());

  std::vector<double> w(num_rows_);
  for (int j : order) {
    ScatterColumn(j, w);
    Ftran(w);
    int best_row = -1;
    double best_abs = options_.pivot_tol;
    for (int i = 0; i < num_rows_; ++i) {
      if (pivoted[i]) continue;
      const double a = std::abs(w[i]);
      if (a > best_abs) {
        best_abs = a;
        best_row = i;
      }
    }
    if (best_row < 0) return false;  // singular basis
    Eta eta;
    eta.row = best_row;
    eta.pivot = w[best_row];
    for (int i = 0; i < num_rows_; ++i) {
      if (i != best_row && w[i] != 0.0) eta.other.emplace_back(i, w[i]);
    }
    etas_.push_back(std::move(eta));
    pivoted[best_row] = true;
    new_basis[best_row] = j;
  }
  basis_ = std::move(new_basis);
  RecomputeBasicValues();
  return true;
}

void SimplexSolver::RecomputeBasicValues() {
  std::vector<double> r = rhs_;
  for (int j = 0; j < num_cols_; ++j) {
    if (state_[j] == VarState::kBasic || xval_[j] == 0.0) continue;
    for (int k = col_start_[j]; k < col_start_[j + 1]; ++k) {
      r[row_index_[k]] -= value_[k] * xval_[j];
    }
  }
  Ftran(r);
  for (int i = 0; i < num_rows_; ++i) xval_[basis_[i]] = r[i];
}

void SimplexSolver::ComputeReducedCosts(std::vector<double>& d) const {
  std::vector<double> pi(num_rows_, 0.0);
  for (int i = 0; i < num_rows_; ++i) pi[i] = cost_[basis_[i]];
  Btran(pi);
  d.assign(num_cols_, 0.0);
  for (int j = 0; j < num_cols_; ++j) {
    if (state_[j] == VarState::kBasic) continue;
    double dj = cost_[j];
    for (int k = col_start_[j]; k < col_start_[j + 1]; ++k) {
      dj -= pi[row_index_[k]] * value_[k];
    }
    d[j] = dj;
  }
}

int SimplexSolver::PriceDantzig(const std::vector<double>& d) const {
  int best = -1;
  double best_violation = options_.optimality_tol;
  for (int j = 0; j < num_cols_; ++j) {
    if (state_[j] == VarState::kBasic) continue;
    if (lower_[j] == upper_[j]) continue;  // fixed: cannot move
    double violation = 0.0;
    if (state_[j] == VarState::kAtLower) {
      // Can increase (or, for free variables parked at 0, also decrease —
      // treated as increase of the mirrored direction below).
      violation = -d[j];
      if (!std::isfinite(lower_[j]) && d[j] > options_.optimality_tol) {
        violation = d[j];  // free variable can decrease too
      }
    } else {
      violation = d[j];
    }
    if (violation > best_violation) {
      best_violation = violation;
      best = j;
    }
  }
  return best;
}

int SimplexSolver::PriceBland(const std::vector<double>& d) const {
  for (int j = 0; j < num_cols_; ++j) {
    if (state_[j] == VarState::kBasic) continue;
    if (lower_[j] == upper_[j]) continue;
    if (state_[j] == VarState::kAtLower) {
      if (d[j] < -options_.optimality_tol) return j;
      if (!std::isfinite(lower_[j]) && d[j] > options_.optimality_tol)
        return j;
    } else {
      if (d[j] > options_.optimality_tol) return j;
    }
  }
  return -1;
}

double SimplexSolver::PhaseObjective() const {
  double obj = 0.0;
  for (int j = 0; j < num_cols_; ++j) obj += cost_[j] * xval_[j];
  return obj;
}

LpStatus SimplexSolver::RunPhase(long max_iterations) {
  std::vector<double> d;
  std::vector<double> w(num_rows_);
  double last_objective = PhaseObjective();
  int since_refactor = 0;

  while (true) {
    if (iterations_ >= max_iterations) return LpStatus::kIterationLimit;
    if ((iterations_ & 63) == 0 && deadline_.Expired()) {
      return LpStatus::kIterationLimit;
    }
    ComputeReducedCosts(d);
    const int entering =
        use_bland_ ? PriceBland(d) : PriceDantzig(d);
    if (entering < 0) return LpStatus::kOptimal;

    // Direction: +1 when the entering variable increases.
    int dir;
    if (state_[entering] == VarState::kAtLower) {
      dir = (d[entering] < 0 || std::isfinite(lower_[entering])) ? +1 : -1;
      if (!std::isfinite(lower_[entering]) && d[entering] > 0) dir = -1;
    } else {
      dir = -1;
    }

    ScatterColumn(entering, w);
    Ftran(w);

    // Ratio test.
    double best_delta = kLpInfinity;
    int leaving_row = -1;
    double leaving_abs = 0.0;
    bool leaving_to_upper = false;
    for (int i = 0; i < num_rows_; ++i) {
      const double wi = w[i];
      if (std::abs(wi) <= options_.pivot_tol) continue;
      const int b = basis_[i];
      const double rate = -dir * wi;  // d(x_b)/d(delta)
      double limit;
      bool to_upper;
      if (rate < 0) {
        if (!std::isfinite(lower_[b])) continue;
        limit = (xval_[b] - lower_[b]) / (-rate);
        to_upper = false;
      } else {
        if (!std::isfinite(upper_[b])) continue;
        limit = (upper_[b] - xval_[b]) / rate;
        to_upper = true;
      }
      if (limit < 0) limit = 0;  // tolerate tiny infeasibilities
      const bool better =
          limit < best_delta - 1e-12 ||
          (limit < best_delta + 1e-12 && std::abs(wi) > leaving_abs);
      if (better) {
        best_delta = limit;
        leaving_row = i;
        leaving_abs = std::abs(wi);
        leaving_to_upper = to_upper;
      }
    }
    double bound_delta = kLpInfinity;
    if (std::isfinite(lower_[entering]) && std::isfinite(upper_[entering])) {
      bound_delta = upper_[entering] - lower_[entering];
    }

    const double delta = std::min(best_delta, bound_delta);
    if (!std::isfinite(delta)) return LpStatus::kUnbounded;

    // Apply the step.
    if (delta != 0.0) {
      for (int i = 0; i < num_rows_; ++i) {
        if (w[i] != 0.0) xval_[basis_[i]] -= dir * w[i] * delta;
      }
      xval_[entering] += dir * delta;
    }

    if (bound_delta <= best_delta + 1e-12 && bound_delta < kLpInfinity &&
        delta == bound_delta) {
      // Bound flip: no basis change.
      state_[entering] = (state_[entering] == VarState::kAtLower)
                             ? VarState::kAtUpper
                             : VarState::kAtLower;
      xval_[entering] = (state_[entering] == VarState::kAtUpper)
                            ? upper_[entering]
                            : lower_[entering];
    } else {
      assert(leaving_row >= 0);
      const int leaving = basis_[leaving_row];
      state_[leaving] =
          leaving_to_upper ? VarState::kAtUpper : VarState::kAtLower;
      xval_[leaving] = leaving_to_upper ? upper_[leaving] : lower_[leaving];
      state_[entering] = VarState::kBasic;
      basis_[leaving_row] = entering;

      Eta eta;
      eta.row = leaving_row;
      eta.pivot = w[leaving_row];
      for (int i = 0; i < num_rows_; ++i) {
        if (i != leaving_row && w[i] != 0.0) eta.other.emplace_back(i, w[i]);
      }
      etas_.push_back(std::move(eta));
      ++since_refactor;
    }

    ++iterations_;

    // Stall detection for anti-cycling.
    const double objective = PhaseObjective();
    if (objective < last_objective - 1e-12 * (1.0 + std::abs(last_objective))) {
      stall_count_ = 0;
      last_objective = objective;
    } else if (++stall_count_ > options_.stall_threshold) {
      use_bland_ = true;
    }

    if (since_refactor >= options_.refactor_interval) {
      if (!Refactorize()) return LpStatus::kNumericalFailure;
      since_refactor = 0;
    }
  }
}

LpResult SimplexSolver::Solve() {
  LpResult result;
  const long max_iterations =
      options_.max_iterations > 0
          ? options_.max_iterations
          : 200L * (num_rows_ + num_cols_) + 20000L;

  // Phase 1: drive artificials to zero.
  const bool has_artificials = num_cols_ > first_artificial_;
  if (has_artificials) {
    cost_.assign(num_cols_, 0.0);
    for (int j = first_artificial_; j < num_cols_; ++j) cost_[j] = 1.0;
    LpStatus status = RunPhase(max_iterations);
    phase1_iterations_ = iterations_;
    if (status == LpStatus::kNumericalFailure ||
        status == LpStatus::kIterationLimit) {
      result.status = status;
      result.iterations = iterations_;
      return result;
    }
    // Unbounded cannot happen in phase 1 (objective bounded below by 0).
    const double infeasibility = PhaseObjective();
    if (infeasibility > options_.feasibility_tol * (1.0 + std::abs(infeasibility))
        && infeasibility > 1e-6) {
      result.status = LpStatus::kInfeasible;
      result.iterations = iterations_;
      return result;
    }
    // Fix artificials at zero for phase 2.
    for (int j = first_artificial_; j < num_cols_; ++j) {
      lower_[j] = upper_[j] = 0.0;
      if (state_[j] != VarState::kBasic) xval_[j] = 0.0;
    }
  }

  cost_ = real_cost_;
  cost_.resize(num_cols_, 0.0);
  LpStatus status = RunPhase(max_iterations);
  result.status = status;
  result.iterations = iterations_;
  result.phase1_iterations = phase1_iterations_;
  if (status == LpStatus::kOptimal || status == LpStatus::kIterationLimit) {
    result.values.assign(xval_.begin(), xval_.begin() + num_struct_);
    result.objective = model_.EvaluateObjective(result.values);
  }
  return result;
}

}  // namespace

LpResult SolveLp(const LpModel& model, const SimplexOptions& options,
                 const std::vector<std::pair<double, double>>*
                     bound_overrides) {
  SimplexSolver solver(model, options, bound_overrides);
  LpResult result = solver.Solve();
  if (result.status == LpStatus::kNumericalFailure) {
    // One retry with tighter refactorization; PFI accuracy is the usual
    // culprit and a short eta file avoids it.
    SimplexOptions retry = options;
    retry.refactor_interval = 20;
    retry.pivot_tol = 1e-10;
    SimplexSolver second(model, retry, bound_overrides);
    result = second.Solve();
  }
  return result;
}

}  // namespace vpart
