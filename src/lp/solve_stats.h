#ifndef VPART_LP_SOLVE_STATS_H_
#define VPART_LP_SOLVE_STATS_H_

namespace vpart {

/// Aggregated telemetry of a sequence of LP solves — one branch & bound
/// search, one portfolio ILP lane, one advise request. Produced per call by
/// SimplexSolver (lp/simplex.h), accumulated by mip/, and threaded through
/// solver/ -> engine/ -> api/ so a service can see how warm starting is
/// doing (warm_starts vs cold_starts, dual vs primal pivots) without
/// attaching a profiler.
struct LpSolveStats {
  /// LP relaxations solved (every B&B node, dive step, and retry target).
  long lp_solves = 0;
  /// Solves answered by dual-simplex reoptimization from a parent basis.
  long warm_starts = 0;
  /// Solves answered by the two-phase primal from a crash basis.
  long cold_starts = 0;
  /// Warm attempts that had to fall back to a cold solve (numerical
  /// failure, a stale or dual-infeasible basis, or an iteration cap hit
  /// mid-reoptimization; a time-limit expiry is not retried and counts
  /// toward neither warm_starts nor cold_starts).
  long warm_start_failures = 0;
  /// Primal pivots across all cold solves (includes the phase-1 share).
  long primal_iterations = 0;
  /// Phase-1 share of primal_iterations.
  long phase1_iterations = 0;
  /// Dual pivots across all warm reoptimizations.
  long dual_iterations = 0;
  /// Product-form-inverse rebuilds (basis refactorizations).
  long factorizations = 0;
  /// Wall clock spent inside LP solves.
  double lp_seconds = 0.0;

  long total_iterations() const { return primal_iterations + dual_iterations; }

  void Add(const LpSolveStats& other) {
    lp_solves += other.lp_solves;
    warm_starts += other.warm_starts;
    cold_starts += other.cold_starts;
    warm_start_failures += other.warm_start_failures;
    primal_iterations += other.primal_iterations;
    phase1_iterations += other.phase1_iterations;
    dual_iterations += other.dual_iterations;
    factorizations += other.factorizations;
    lp_seconds += other.lp_seconds;
  }
};

}  // namespace vpart

#endif  // VPART_LP_SOLVE_STATS_H_
