#ifndef VPART_LP_SOLVE_STATS_H_
#define VPART_LP_SOLVE_STATS_H_

namespace vpart {

/// Aggregated telemetry of a sequence of LP solves — one branch & bound
/// search, one portfolio ILP lane, one advise request. Produced per call by
/// SimplexSolver (lp/simplex.h), accumulated by mip/, and threaded through
/// solver/ -> engine/ -> api/ so a service can see how warm starting and
/// the factorized simplex core are doing (warm_starts vs cold_starts, dual
/// vs primal pivots, Forrest–Tomlin updates vs refactorizations) without
/// attaching a profiler. Field-by-field consumer documentation lives in
/// README.md § "Solve statistics in the response".
struct LpSolveStats {
  /// LP relaxations solved (every B&B node, dive step, and retry target).
  long lp_solves = 0;
  /// Solves answered by dual-simplex reoptimization from a parent basis —
  /// including reoptimizations stopped by the node's wall-clock budget
  /// (they are not retried cold, so the ledger stays closed:
  /// warm_starts + cold_starts == lp_solves).
  long warm_starts = 0;
  /// Solves answered by the two-phase primal from a crash basis.
  long cold_starts = 0;
  /// Warm attempts that had to fall back to a cold solve (numerical
  /// failure, a stale or dual-infeasible basis, or an iteration cap hit
  /// mid-reoptimization).
  long warm_start_failures = 0;
  /// Primal pivots across all cold solves (includes the phase-1 share).
  long primal_iterations = 0;
  /// Phase-1 share of primal_iterations.
  long phase1_iterations = 0;
  /// Dual pivots across all warm reoptimizations.
  long dual_iterations = 0;
  /// Fresh LU factorizations of the basis (cold-start crash bases, stale
  /// warm-start loads, and trigger-driven rebuilds; see the refactor_*
  /// counters for why the triggered ones fired).
  long factorizations = 0;
  /// Forrest–Tomlin updates applied in place of a refactorization — the
  /// healthy steady state is many ft_updates per factorization.
  long ft_updates = 0;
  /// Nonbasic bound flips harvested by the long-step (bound-flipping) dual
  /// ratio test and by primal bound-to-bound moves: variables moved across
  /// their box without a basis change.
  long bound_flips = 0;
  /// Devex / dual-steepest-edge reference-framework resets (weights grew
  /// past the trust threshold and restarted from 1). A handful per solve
  /// is normal; a flood signals a numerically hostile model.
  long se_resets = 0;
  /// Refactorizations triggered by the update-count cap
  /// (SimplexOptions::refactor_interval Forrest–Tomlin updates applied).
  long refactor_updates = 0;
  /// Refactorizations triggered by factor fill growth past
  /// SimplexOptions::fill_ratio times the fresh factorization's nonzeros.
  long refactor_fill = 0;
  /// Refactorizations forced by numerical distrust: a rejected (unstable)
  /// Forrest–Tomlin update or an FTRAN/BTRAN disagreement on the pivot.
  long refactor_stability = 0;
  /// Invariant audits executed (SimplexOptions::audit_level, check/audit.h):
  /// residual checks after refactorizations / FT-update batches,
  /// basis-header checks on LoadBasis, pricing-weight positivity checks.
  /// Zero when auditing is off.
  long audits_run = 0;
  /// Audits that failed. Always 0 on a healthy solve; non-zero means the
  /// factorization drifted, a basis snapshot was corrupt, or a pricing
  /// weight went non-positive — treat the optimality claim with suspicion.
  long audit_failures = 0;
  /// Wall clock spent inside LP solves.
  double lp_seconds = 0.0;

  long total_iterations() const { return primal_iterations + dual_iterations; }

  void Add(const LpSolveStats& other) {
    lp_solves += other.lp_solves;
    warm_starts += other.warm_starts;
    cold_starts += other.cold_starts;
    warm_start_failures += other.warm_start_failures;
    primal_iterations += other.primal_iterations;
    phase1_iterations += other.phase1_iterations;
    dual_iterations += other.dual_iterations;
    factorizations += other.factorizations;
    ft_updates += other.ft_updates;
    bound_flips += other.bound_flips;
    se_resets += other.se_resets;
    refactor_updates += other.refactor_updates;
    refactor_fill += other.refactor_fill;
    refactor_stability += other.refactor_stability;
    audits_run += other.audits_run;
    audit_failures += other.audit_failures;
    lp_seconds += other.lp_seconds;
  }
};

}  // namespace vpart

#endif  // VPART_LP_SOLVE_STATS_H_
