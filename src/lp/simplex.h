#ifndef VPART_LP_SIMPLEX_H_
#define VPART_LP_SIMPLEX_H_

#include <cstdint>
#include <string>
#include <vector>

#include "check/audit.h"
#include "lp/factorization.h"
#include "lp/model.h"
#include "lp/pricing.h"
#include "lp/solve_stats.h"
#include "util/deadline.h"

namespace vpart {

enum class LpStatus {
  kOptimal,
  kInfeasible,
  kUnbounded,
  kIterationLimit,
  kTimeLimit,
  kNumericalFailure,
};

const char* LpStatusName(LpStatus status);

/// Knobs of the simplex core. The numerical-tolerance table in
/// src/lp/README.md documents how these interact; the defaults are tuned
/// for the eq.-(7) partitioning models and rarely need changing.
struct SimplexOptions {
  /// Bound/row feasibility tolerance.
  double feasibility_tol = 1e-7;
  /// Reduced-cost optimality tolerance.
  double optimality_tol = 1e-7;
  /// Smallest usable pivot element.
  double pivot_tol = 1e-8;
  /// Hard iteration cap; <= 0 selects an automatic cap of
  /// 200·(rows+cols) + 20000.
  long max_iterations = -1;
  /// Wall-clock cap in seconds; <= 0 means none. A timed-out solve reports
  /// kTimeLimit.
  double time_limit_seconds = 0.0;
  /// Forrest–Tomlin updates accepted before the basis LU is rebuilt from
  /// scratch (the update-count refactorization trigger).
  int refactor_interval = 100;
  /// Markowitz threshold partial pivoting: a factorization pivot must be
  /// within this factor of its column's largest active entry.
  double markowitz_threshold = 0.1;
  /// Fill-growth refactorization trigger: rebuild when the factor's
  /// nonzeros exceed this multiple of the fresh factorization's.
  double fill_ratio = 6.0;
  /// Devex pricing for the primal phases (off = classic Dantzig).
  bool use_devex = true;
  /// Dual steepest-edge row pricing for Reoptimize() (off =
  /// most-infeasible row selection).
  bool use_steepest_edge = true;
  /// Long-step (bound-flipping) dual ratio test: harvest nonbasic bound
  /// flips along the dual ray so box-constrained variables move in bulk
  /// per pivot (off = one basis change per dual pivot).
  bool use_bound_flips = true;
  /// After this many consecutive non-improving (degenerate) iterations the
  /// pricing switches to Bland's rule, which guarantees termination. Applies
  /// to both the primal phases and the dual reoptimization.
  long stall_threshold = 2000;
  /// Self-check level (check/audit.h): kOff (default) runs no audits; kCheap
  /// checks ‖A·x − b‖∞ after each refactorization and basis-header
  /// consistency on LoadBasis; kFull adds a residual check every
  /// audit_ft_interval Forrest–Tomlin updates and pricing-weight positivity
  /// at solve end. Failures are counted (LpResult::audit_failures), never
  /// acted on.
  AuditLevel audit_level = AuditLevel::kOff;
  /// Forrest–Tomlin updates between residual audits at AuditLevel::kFull.
  int audit_ft_interval = 25;
};

struct LpResult {
  LpStatus status = LpStatus::kNumericalFailure;
  double objective = 0.0;
  /// Structural variable values. Populated for kOptimal, and as a
  /// best-effort (feasible but suboptimal) iterate when the phase-2 primal
  /// stops on an iteration/time limit; empty otherwise — a phase-1 or
  /// dual-reoptimization stop leaves a primal-infeasible iterate, which is
  /// never exposed.
  std::vector<double> values;
  /// Total pivots of this call (primal phases, or dual when warm_started).
  long iterations = 0;
  long phase1_iterations = 0;
  /// Dual pivots (non-zero only for Reoptimize calls).
  long dual_iterations = 0;
  /// Fresh LU factorizations of the basis during this call.
  long factorizations = 0;
  /// Forrest–Tomlin updates applied during this call.
  long ft_updates = 0;
  /// Nonbasic bound flips (long-step dual + primal bound-to-bound moves).
  long bound_flips = 0;
  /// Devex / dual-steepest-edge reference-framework resets.
  long se_resets = 0;
  /// Refactorization triggers of this call, by reason (update-count cap,
  /// fill growth, numerical distrust); see LpSolveStats for semantics.
  long refactor_updates = 0;
  long refactor_fill = 0;
  long refactor_stability = 0;
  /// Invariant audits executed / failed during this call (plus any audits
  /// run by LoadBasis since the previous call, so the ledger stays closed).
  /// Both 0 unless SimplexOptions::audit_level enables them.
  long audits_run = 0;
  long audit_failures = 0;
  /// True when this result came from a dual reoptimization of a loaded
  /// basis rather than a cold two-phase primal.
  bool warm_started = false;

  /// Folds this call's factorization/pricing counters into an aggregate —
  /// the one place that knows the LpResult <-> LpSolveStats counter
  /// mapping (the iteration/start counters stay caller-assigned because
  /// their meaning depends on the warm/cold path taken).
  void AddFactorCountersTo(LpSolveStats& stats) const {
    stats.factorizations += factorizations;
    stats.ft_updates += ft_updates;
    stats.bound_flips += bound_flips;
    stats.se_resets += se_resets;
    stats.refactor_updates += refactor_updates;
    stats.refactor_fill += refactor_fill;
    stats.refactor_stability += refactor_stability;
    stats.audits_run += audits_run;
    stats.audit_failures += audit_failures;
  }
};

/// Snapshot of a simplex basis: which column is basic in each row and the
/// at-lower/at-upper state of every nonbasic column (structurals and
/// logicals). Cheap to copy, safe to share across threads once saved, and
/// valid for any SimplexSolver built over the *same* LpModel — the point is
/// to carry a parent B&B node's optimal basis into its children. A snapshot
/// taken while a phase-1 artificial is still basic reports !valid() (rare;
/// callers fall back to a cold solve).
class Basis {
 public:
  bool valid() const { return valid_; }
  int num_rows() const { return static_cast<int>(basic_of_row_.size()); }

  /// Raw snapshot contents, exposed so a basis can cross a process
  /// boundary (dist/wire_messages.h ships frontier-node bases to
  /// workers). The encoding is an implementation detail of the simplex —
  /// treat the vectors as opaque and round-trip them unchanged.
  const std::vector<int>& basic_of_row() const { return basic_of_row_; }
  const std::vector<uint8_t>& states() const { return state_; }

  /// Reassembles a basis from raw parts (the inverse of the accessors
  /// above). An empty `basic_of_row` yields an invalid basis. LoadBasis
  /// re-validates shape against the model, so a corrupt wire payload is
  /// rejected there rather than trusted here.
  static Basis FromParts(std::vector<int> basic_of_row,
                         std::vector<uint8_t> states) {
    Basis b;
    b.valid_ = !basic_of_row.empty();
    b.basic_of_row_ = std::move(basic_of_row);
    b.state_ = std::move(states);
    return b;
  }

 private:
  friend class SimplexSolver;
  std::vector<int> basic_of_row_;    // row -> column
  std::vector<uint8_t> state_;       // column -> VarState (struct + logical)
  bool valid_ = false;
};

/// Reusable bounded-variable simplex over one LpModel. The constraint
/// matrix is built once (CSC over structural + logical columns); bounds,
/// time budgets, and the basis are replaceable between solves, so a branch
/// & bound pays the matrix build once per tree and each node solve is
///
///   solver.SetBounds(&node_bounds);
///   if (solver.LoadBasis(parent_basis)) result = solver.Reoptimize();
///   if (result.status needs it)         result = solver.Solve();   // cold
///
/// The linear algebra runs on a sparse LU factorization of the basis
/// (Markowitz pivoting, lp/factorization.h) kept current across pivots by
/// Forrest–Tomlin updates; the basis is refactorized only when the update
/// count, factor fill, or a stability check says so — including across
/// Reoptimize() calls, so reloading the basis the solver already holds
/// (the plunging child of a just-solved B&B node) skips the rebuild
/// entirely.
///
/// Solve() is the cold two-phase primal: devex pricing (Dantzig when
/// disabled, Bland under stalls) with reduced costs maintained
/// incrementally across pivots. Reoptimize() runs a bounded-variable dual
/// simplex from the loaded basis — dual steepest-edge row selection and a
/// long-step (bound-flipping) ratio test — so after a bound tightening the
/// parent's optimal basis reoptimizes in a handful of dual pivots without
/// any phase 1. See src/lp/README.md for the full internals contract.
///
/// Not thread-safe; use one SimplexSolver per worker. The model must
/// outlive the solver.
class SimplexSolver {
 public:
  explicit SimplexSolver(const LpModel& model,
                         const SimplexOptions& options = {});

  /// Replaces the structural variable bounds used by subsequent solves.
  /// `bound_overrides`, when non-null, supplies per-variable (lower, upper)
  /// pairs replacing the model bounds — used by branch & bound to explore
  /// nodes without copying the model. Null restores the model's own bounds.
  void SetBounds(
      const std::vector<std::pair<double, double>>* bound_overrides);

  /// Per-call wall-clock budget; <= 0 means none.
  void SetTimeLimit(double seconds) { options_.time_limit_seconds = seconds; }

  const SimplexOptions& options() const { return options_; }
  void set_options(const SimplexOptions& options) { options_ = options; }

  /// Cold solve: crash basis, phase 1 (artificials), phase 2 primal.
  LpResult Solve();

  /// Solve() with the historical numerical-failure retry: one more cold
  /// attempt under a tighter refactorization schedule before giving up.
  LpResult SolveWithRetry();

  /// Dual-simplex reoptimization from the current basis (set by LoadBasis,
  /// or left by a previous optimal solve). Returns kOptimal/kInfeasible on
  /// a completed proof; kNumericalFailure when the basis is unusable
  /// (singular, dual infeasible beyond tolerance, artificial still basic) —
  /// the caller's ladder then falls back to a cold Solve().
  LpResult Reoptimize();

  /// Snapshot of the current basis (see Basis). Call after an optimal
  /// Solve()/Reoptimize().
  Basis SaveBasis() const;

  /// Installs a snapshot taken from a solver over the same model. Returns
  /// false (leaving the solver needing a cold Solve()) on an invalid or
  /// shape-mismatched snapshot. Loading the basis the solver already
  /// holds keeps the live factorization (no rebuild on the next
  /// Reoptimize()).
  bool LoadBasis(const Basis& basis);

  const LpModel& model() const { return model_; }

 private:
  enum class VarState : uint8_t { kBasic, kAtLower, kAtUpper };

  // --- setup -------------------------------------------------------------
  void BuildMatrix();
  void TruncateArtificials();
  /// Rebuilds the crash basis (nonbasic structurals at bounds, logicals
  /// basic where feasible, artificials where not) for a cold solve.
  void ResetToCrashBasis();
  void ResetCallCounters();
  /// `expose_partial`: limit-stop iterates are primal feasible (phase-2
  /// primal) and may be reported as best-effort values.
  LpResult FinishResult(LpStatus status, bool warm, bool expose_partial);

  // --- linear algebra over the LU factorization --------------------------
  void Ftran(std::vector<double>& w) const;  // w := B^{-1} w
  void Btran(std::vector<double>& v) const;  // v := B^{-T} v
  void ScatterColumn(int j, std::vector<double>& out) const;
  bool Refactorize();
  void RecomputeBasicValues();
  /// Forrest–Tomlin update for "entering replaces position `row`", with
  /// the trigger-driven refactorization fallback. False = unrecoverable;
  /// `refactorized` reports whether a fresh LU replaced the update (the
  /// caller must then re-price from scratch).
  bool UpdateFactorization(int entering, int row, bool& refactorized);

  // --- invariant audits (SimplexOptions::audit_level) ---------------------
  /// ‖A·x − b‖∞ over the current iterate; counts one audit, and a failure
  /// when the residual exceeds the audit tolerance. `where` labels the log.
  void AuditResidual(const char* where);
  /// kFull-level pricing-weight positivity check at solve end.
  void AuditPricingWeights();

  // --- pricing -----------------------------------------------------------
  /// Reduced-cost violation of nonbasic column j (> 0 when j can improve
  /// the objective by moving off its bound); 0 when ineligible.
  double PrimalViolation(int j, double dj) const;
  int PricePrimal(const std::vector<double>& d) const;
  int PriceBland(const std::vector<double>& d) const;
  void ComputeReducedCosts(std::vector<double>& d) const;

  // --- iteration loops ---------------------------------------------------
  LpStatus RunPhase(long max_iterations);
  double PhaseObjective() const;
  LpStatus RunDual(long max_iterations);

  long MaxIterations() const;

  // --- problem data ------------------------------------------------------
  const LpModel& model_;
  SimplexOptions options_;
  Deadline deadline_{0.0};

  int num_rows_ = 0;
  int num_struct_ = 0;
  int num_cols_ = 0;  // struct + logicals (+ artificials during cold solves)

  // CSC matrix over all columns.
  std::vector<int> col_start_;
  std::vector<int> row_index_;
  std::vector<double> value_;

  std::vector<double> lower_, upper_;
  std::vector<double> cost_;       // active phase cost
  std::vector<double> real_cost_;  // phase-2 cost
  std::vector<double> rhs_;
  int first_artificial_ = 0;  // columns >= this are artificial

  // --- simplex state -----------------------------------------------------
  std::vector<int> basis_;       // row -> column
  std::vector<VarState> state_;  // column -> state
  std::vector<double> xval_;     // column -> current value
  LuFactorization factor_;
  /// The live factorization matches basis_ (kept true across pivots by the
  /// Forrest–Tomlin updates; false after a crash reset or loading a
  /// different basis). When true, Reoptimize() skips the rebuild.
  bool factor_synced_ = false;
  DevexPricing devex_;
  DualSteepestEdgePricing dse_;
  bool basis_ready_ = false;  // a loaded/left basis is available
  long iterations_ = 0;
  long phase1_iterations_ = 0;
  long factorizations_ = 0;
  long bound_flips_ = 0;
  LuFactorization::Stats factor_stats_base_;
  long pricing_resets_base_ = 0;
  long stall_count_ = 0;
  bool use_bland_ = false;
  // Audit counters are cumulative for the solver's lifetime; FinishResult
  // reports (total - reported) and advances the watermark, so LoadBasis
  // audits — which land between calls, before the next ResetCallCounters —
  // are attributed to the next solve and the ledger stays closed.
  long audits_run_total_ = 0;
  long audit_failures_total_ = 0;
  long audits_run_reported_ = 0;
  long audit_failures_reported_ = 0;
  int ft_updates_since_audit_ = 0;
};

/// Solves the LP relaxation of `model` (integrality flags ignored) with a
/// cold two-phase primal simplex — the one-shot convenience wrapper over
/// SimplexSolver, kept for callers that solve each model once.
LpResult SolveLp(const LpModel& model, const SimplexOptions& options = {},
                 const std::vector<std::pair<double, double>>*
                     bound_overrides = nullptr);

}  // namespace vpart

#endif  // VPART_LP_SIMPLEX_H_
