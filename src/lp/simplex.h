#ifndef VPART_LP_SIMPLEX_H_
#define VPART_LP_SIMPLEX_H_

#include <cstdint>
#include <string>
#include <vector>

#include "lp/model.h"
#include "lp/solve_stats.h"
#include "util/stopwatch.h"

namespace vpart {

enum class LpStatus {
  kOptimal,
  kInfeasible,
  kUnbounded,
  kIterationLimit,
  kTimeLimit,
  kNumericalFailure,
};

const char* LpStatusName(LpStatus status);

struct SimplexOptions {
  /// Bound/row feasibility tolerance.
  double feasibility_tol = 1e-7;
  /// Reduced-cost optimality tolerance.
  double optimality_tol = 1e-7;
  /// Smallest usable pivot element.
  double pivot_tol = 1e-8;
  /// Hard iteration cap; <= 0 selects an automatic cap of
  /// 200·(rows+cols) + 20000.
  long max_iterations = -1;
  /// Wall-clock cap in seconds; <= 0 means none. A timed-out solve reports
  /// kTimeLimit.
  double time_limit_seconds = 0.0;
  /// Refactorize (rebuild the product-form inverse) this often.
  int refactor_interval = 100;
  /// After this many consecutive non-improving (degenerate) iterations the
  /// pricing switches to Bland's rule, which guarantees termination. Applies
  /// to both the primal phases and the dual reoptimization.
  long stall_threshold = 2000;
};

struct LpResult {
  LpStatus status = LpStatus::kNumericalFailure;
  double objective = 0.0;
  /// Structural variable values. Populated for kOptimal, and as a
  /// best-effort (feasible but suboptimal) iterate when the phase-2 primal
  /// stops on an iteration/time limit; empty otherwise — a phase-1 or
  /// dual-reoptimization stop leaves a primal-infeasible iterate, which is
  /// never exposed.
  std::vector<double> values;
  /// Total pivots of this call (primal phases, or dual when warm_started).
  long iterations = 0;
  long phase1_iterations = 0;
  /// Dual pivots (non-zero only for Reoptimize calls).
  long dual_iterations = 0;
  /// Product-form-inverse rebuilds during this call.
  long factorizations = 0;
  /// True when this result came from a dual reoptimization of a loaded
  /// basis rather than a cold two-phase primal.
  bool warm_started = false;
};

/// Snapshot of a simplex basis: which column is basic in each row and the
/// at-lower/at-upper state of every nonbasic column (structurals and
/// logicals). Cheap to copy, safe to share across threads once saved, and
/// valid for any SimplexSolver built over the *same* LpModel — the point is
/// to carry a parent B&B node's optimal basis into its children. A snapshot
/// taken while a phase-1 artificial is still basic reports !valid() (rare;
/// callers fall back to a cold solve).
class Basis {
 public:
  bool valid() const { return valid_; }
  int num_rows() const { return static_cast<int>(basic_of_row_.size()); }

 private:
  friend class SimplexSolver;
  std::vector<int> basic_of_row_;    // row -> column
  std::vector<uint8_t> state_;       // column -> VarState (struct + logical)
  bool valid_ = false;
};

/// Reusable bounded-variable simplex over one LpModel. The constraint
/// matrix is built once (CSC over structural + logical columns); bounds,
/// time budgets, and the basis are replaceable between solves, so a branch
/// & bound pays the matrix build once per tree and each node solve is
///
///   solver.SetBounds(&node_bounds);
///   if (solver.LoadBasis(parent_basis)) result = solver.Reoptimize();
///   if (result.status needs it)         result = solver.Solve();   // cold
///
/// Solve() is the original two-phase primal (Dantzig pricing, Bland
/// anti-cycling fallback, product-form inverse). Reoptimize() runs a
/// bounded-variable dual simplex from the loaded basis: after a bound
/// tightening the parent's optimal basis stays dual feasible, so the child
/// reoptimizes in a handful of dual pivots without any phase 1.
///
/// Not thread-safe; use one SimplexSolver per worker. The model must
/// outlive the solver.
class SimplexSolver {
 public:
  explicit SimplexSolver(const LpModel& model,
                         const SimplexOptions& options = {});

  /// Replaces the structural variable bounds used by subsequent solves.
  /// `bound_overrides`, when non-null, supplies per-variable (lower, upper)
  /// pairs replacing the model bounds — used by branch & bound to explore
  /// nodes without copying the model. Null restores the model's own bounds.
  void SetBounds(
      const std::vector<std::pair<double, double>>* bound_overrides);

  /// Per-call wall-clock budget; <= 0 means none.
  void SetTimeLimit(double seconds) { options_.time_limit_seconds = seconds; }

  const SimplexOptions& options() const { return options_; }
  void set_options(const SimplexOptions& options) { options_ = options; }

  /// Cold solve: crash basis, phase 1 (artificials), phase 2 primal.
  LpResult Solve();

  /// Solve() with the historical numerical-failure retry: one more cold
  /// attempt under a tighter refactorization schedule before giving up.
  LpResult SolveWithRetry();

  /// Dual-simplex reoptimization from the current basis (set by LoadBasis,
  /// or left by a previous optimal solve). Returns kOptimal/kInfeasible on
  /// a completed proof; kNumericalFailure when the basis is unusable
  /// (singular, dual infeasible beyond tolerance, artificial still basic) —
  /// the caller's ladder then falls back to a cold Solve().
  LpResult Reoptimize();

  /// Snapshot of the current basis (see Basis). Call after an optimal
  /// Solve()/Reoptimize().
  Basis SaveBasis() const;

  /// Installs a snapshot taken from a solver over the same model. Returns
  /// false (leaving the solver needing a cold Solve()) on an invalid or
  /// shape-mismatched snapshot.
  bool LoadBasis(const Basis& basis);

  const LpModel& model() const { return model_; }

 private:
  enum class VarState : uint8_t { kBasic, kAtLower, kAtUpper };

  /// One elementary transformation of the product-form inverse: the basis
  /// changed by bringing the (FTRAN-ed) column `w` into position `row`.
  struct Eta {
    int row = -1;
    double pivot = 0.0;                         // w[row]
    std::vector<std::pair<int, double>> other;  // (i, w[i]) for i != row
  };

  // --- setup -------------------------------------------------------------
  void BuildMatrix();
  void TruncateArtificials();
  /// Rebuilds the crash basis (nonbasic structurals at bounds, logicals
  /// basic where feasible, artificials where not) for a cold solve.
  void ResetToCrashBasis();
  void ResetCallCounters();
  /// `expose_partial`: limit-stop iterates are primal feasible (phase-2
  /// primal) and may be reported as best-effort values.
  LpResult FinishResult(LpStatus status, bool warm, bool expose_partial);

  // --- linear algebra over the product-form inverse ----------------------
  void Ftran(std::vector<double>& w) const;  // w := B^{-1} w
  void Btran(std::vector<double>& v) const;  // v := B^{-T} v
  void ScatterColumn(int j, std::vector<double>& out) const;
  bool Refactorize();
  void RecomputeBasicValues();

  // --- primal iteration --------------------------------------------------
  int PriceDantzig(const std::vector<double>& d) const;
  int PriceBland(const std::vector<double>& d) const;
  void ComputeReducedCosts(std::vector<double>& d) const;
  LpStatus RunPhase(long max_iterations);
  double PhaseObjective() const;

  // --- dual iteration ----------------------------------------------------
  LpStatus RunDual(long max_iterations);

  long MaxIterations() const;

  // --- problem data ------------------------------------------------------
  const LpModel& model_;
  SimplexOptions options_;
  Deadline deadline_{0.0};

  int num_rows_ = 0;
  int num_struct_ = 0;
  int num_cols_ = 0;  // struct + logicals (+ artificials during cold solves)

  // CSC matrix over all columns.
  std::vector<int> col_start_;
  std::vector<int> row_index_;
  std::vector<double> value_;

  std::vector<double> lower_, upper_;
  std::vector<double> cost_;       // active phase cost
  std::vector<double> real_cost_;  // phase-2 cost
  std::vector<double> rhs_;
  int first_artificial_ = 0;  // columns >= this are artificial

  // --- simplex state -----------------------------------------------------
  std::vector<int> basis_;       // row -> column
  std::vector<VarState> state_;  // column -> state
  std::vector<double> xval_;     // column -> current value
  std::vector<Eta> etas_;
  bool basis_ready_ = false;  // a loaded/left basis is available
  long iterations_ = 0;
  long phase1_iterations_ = 0;
  long factorizations_ = 0;
  long stall_count_ = 0;
  bool use_bland_ = false;
};

/// Solves the LP relaxation of `model` (integrality flags ignored) with a
/// cold two-phase primal simplex — the one-shot convenience wrapper over
/// SimplexSolver, kept for callers that solve each model once.
LpResult SolveLp(const LpModel& model, const SimplexOptions& options = {},
                 const std::vector<std::pair<double, double>>*
                     bound_overrides = nullptr);

}  // namespace vpart

#endif  // VPART_LP_SIMPLEX_H_
