#ifndef VPART_LP_SIMPLEX_H_
#define VPART_LP_SIMPLEX_H_

#include <string>
#include <vector>

#include "lp/model.h"

namespace vpart {

enum class LpStatus {
  kOptimal,
  kInfeasible,
  kUnbounded,
  kIterationLimit,
  kNumericalFailure,
};

const char* LpStatusName(LpStatus status);

struct SimplexOptions {
  /// Bound/row feasibility tolerance.
  double feasibility_tol = 1e-7;
  /// Reduced-cost optimality tolerance.
  double optimality_tol = 1e-7;
  /// Smallest usable pivot element.
  double pivot_tol = 1e-8;
  /// Hard iteration cap; <= 0 selects an automatic cap of
  /// 200·(rows+cols) + 20000.
  long max_iterations = -1;
  /// Wall-clock cap in seconds; <= 0 means none. A timed-out solve reports
  /// kIterationLimit (the result is unusable either way).
  double time_limit_seconds = 0.0;
  /// Refactorize (rebuild the product-form inverse) this often.
  int refactor_interval = 100;
  /// After this many consecutive non-improving (degenerate) iterations the
  /// pricing switches to Bland's rule, which guarantees termination.
  long stall_threshold = 2000;
};

struct LpResult {
  LpStatus status = LpStatus::kNumericalFailure;
  double objective = 0.0;
  std::vector<double> values;  // structural variables only
  long iterations = 0;
  long phase1_iterations = 0;
};

/// Solves the LP relaxation of `model` (integrality flags ignored) with a
/// two-phase primal simplex: bounded variables, product-form inverse,
/// Dantzig pricing with a Bland anti-cycling fallback.
///
/// `bound_overrides`, when non-null, supplies per-variable (lower, upper)
/// pairs replacing the model bounds — used by branch & bound to explore
/// nodes without copying the model.
LpResult SolveLp(const LpModel& model, const SimplexOptions& options = {},
                 const std::vector<std::pair<double, double>>*
                     bound_overrides = nullptr);

}  // namespace vpart

#endif  // VPART_LP_SIMPLEX_H_
