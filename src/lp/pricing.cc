#include "lp/pricing.h"

#include <algorithm>
#include <cmath>

namespace vpart {

void DevexPricing::Reset(int num_cols) {
  weights_.assign(num_cols, 1.0);
}

void DevexPricing::UpdateOnPivot(const std::vector<double>& alpha_row,
                                 int entering, double alpha_q, int leaving) {
  if (alpha_q == 0.0) return;
  const double wq = weights_[entering];
  const double inv_sq = 1.0 / (alpha_q * alpha_q);
  double max_weight = 0.0;
  for (size_t j = 0; j < alpha_row.size(); ++j) {
    const double a = alpha_row[j];
    if (a == 0.0) continue;
    const double candidate = a * a * inv_sq * wq;
    if (candidate > weights_[j]) weights_[j] = candidate;
    max_weight = std::max(max_weight, weights_[j]);
  }
  weights_[leaving] = std::max(wq * inv_sq, 1.0);
  if (std::max(max_weight, weights_[leaving]) > kResetThreshold) {
    ++resets_;
    std::fill(weights_.begin(), weights_.end(), 1.0);
  }
}

void DualSteepestEdgePricing::Reset(int num_rows) {
  weights_.assign(num_rows, 1.0);
}

void DualSteepestEdgePricing::UpdateOnPivot(const std::vector<double>& w,
                                            int r, double alpha_r) {
  if (alpha_r == 0.0) return;
  const double gr = weights_[r];
  const double inv_sq = 1.0 / (alpha_r * alpha_r);
  double max_weight = 0.0;
  for (size_t i = 0; i < w.size(); ++i) {
    if (static_cast<int>(i) == r || w[i] == 0.0) continue;
    const double candidate = w[i] * w[i] * inv_sq * gr;
    if (candidate > weights_[i]) weights_[i] = candidate;
    max_weight = std::max(max_weight, weights_[i]);
  }
  weights_[r] = std::max(gr * inv_sq, 1.0);
  if (std::max(max_weight, weights_[r]) > kResetThreshold) {
    ++resets_;
    std::fill(weights_.begin(), weights_.end(), 1.0);
  }
}

}  // namespace vpart
