#ifndef VPART_LP_MODEL_H_
#define VPART_LP_MODEL_H_

#include <limits>
#include <string>
#include <vector>

#include "util/status.h"

namespace vpart {

inline constexpr double kLpInfinity = std::numeric_limits<double>::infinity();

enum class ConstraintSense { kLessEqual, kGreaterEqual, kEqual };

/// A linear program / mixed-integer program in minimization form:
///
///   min  c·x
///   s.t. row_i: a_i·x {<=,>=,=} b_i
///        lower_j <= x_j <= upper_j,  x_j integer where flagged
///
/// Rows and columns are append-only; the model is a plain container that
/// SolveLp / SolveMip consume.
class LpModel {
 public:
  struct Variable {
    std::string name;
    double lower = 0.0;
    double upper = kLpInfinity;
    double objective = 0.0;
    bool is_integer = false;
  };

  struct Constraint {
    std::string name;
    ConstraintSense sense = ConstraintSense::kLessEqual;
    double rhs = 0.0;
    // Column-index/coefficient pairs, canonicalized by AddConstraint:
    // sorted by column, duplicates summed, exact zeros dropped — so every
    // consumer (primal build, dual reoptimizer, feasibility checks) sees
    // the same sparse row.
    std::vector<std::pair<int, double>> terms;
  };

  /// Adds a continuous variable; returns its column index.
  int AddVariable(double lower, double upper, double objective,
                  std::string name = "");

  /// Adds a binary {0,1} variable; returns its column index.
  int AddBinaryVariable(double objective, std::string name = "");

  /// Adds a constraint; returns its row index. Terms with out-of-range
  /// columns are a programming error (asserted). Terms are stored in
  /// canonical form: sorted by column, duplicate columns summed, zero
  /// coefficients dropped.
  int AddConstraint(ConstraintSense sense, double rhs,
                    std::vector<std::pair<int, double>> terms,
                    std::string name = "");

  /// Replaces variable j's bounds in place. This is the one permitted
  /// mutation of an existing column: a distributed worker reconstructs a
  /// B&B frontier node by applying the shipped branching fixings to its
  /// own copy of the root model (dist/worker.h). `lower <= upper` and a
  /// valid column index are the caller's responsibility (asserted).
  void SetVariableBounds(int j, double lower, double upper);

  int num_variables() const { return static_cast<int>(variables_.size()); }
  int num_constraints() const {
    return static_cast<int>(constraints_.size());
  }

  const Variable& variable(int j) const { return variables_[j]; }
  const Constraint& constraint(int i) const { return constraints_[i]; }
  const std::vector<Variable>& variables() const { return variables_; }
  const std::vector<Constraint>& constraints() const { return constraints_; }

  /// Number of structural nonzeros across all rows.
  size_t num_nonzeros() const;

  /// c·x for a full assignment.
  double EvaluateObjective(const std::vector<double>& x) const;

  /// Verifies bounds, integrality and constraints within `tol`.
  Status CheckFeasible(const std::vector<double>& x, double tol = 1e-6) const;

 private:
  std::vector<Variable> variables_;
  std::vector<Constraint> constraints_;
};

}  // namespace vpart

#endif  // VPART_LP_MODEL_H_
