#include "lp/model.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "util/string_util.h"

namespace vpart {

int LpModel::AddVariable(double lower, double upper, double objective,
                         std::string name) {
  assert(lower <= upper);
  Variable v;
  v.lower = lower;
  v.upper = upper;
  v.objective = objective;
  v.name = name.empty() ? StrFormat("x%d", num_variables()) : std::move(name);
  variables_.push_back(std::move(v));
  return num_variables() - 1;
}

int LpModel::AddBinaryVariable(double objective, std::string name) {
  int j = AddVariable(0.0, 1.0, objective, std::move(name));
  variables_[j].is_integer = true;
  return j;
}

void LpModel::SetVariableBounds(int j, double lower, double upper) {
  assert(j >= 0 && j < num_variables());
  assert(lower <= upper);
  variables_[j].lower = lower;
  variables_[j].upper = upper;
}

int LpModel::AddConstraint(ConstraintSense sense, double rhs,
                           std::vector<std::pair<int, double>> terms,
                           std::string name) {
  for (const auto& [col, coef] : terms) {
    (void)coef;
    assert(col >= 0 && col < num_variables());
  }
  // Canonicalize: sort by column, merge duplicates, drop exact zeros.
  std::sort(terms.begin(), terms.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  size_t out = 0;
  for (size_t k = 0; k < terms.size(); ++k) {
    if (out > 0 && terms[out - 1].first == terms[k].first) {
      terms[out - 1].second += terms[k].second;
    } else {
      terms[out++] = terms[k];
    }
  }
  terms.resize(out);
  terms.erase(std::remove_if(terms.begin(), terms.end(),
                             [](const auto& t) { return t.second == 0.0; }),
              terms.end());
  Constraint c;
  c.sense = sense;
  c.rhs = rhs;
  c.terms = std::move(terms);
  c.name =
      name.empty() ? StrFormat("r%d", num_constraints()) : std::move(name);
  constraints_.push_back(std::move(c));
  return num_constraints() - 1;
}

size_t LpModel::num_nonzeros() const {
  size_t nnz = 0;
  for (const Constraint& c : constraints_) nnz += c.terms.size();
  return nnz;
}

double LpModel::EvaluateObjective(const std::vector<double>& x) const {
  assert(x.size() == variables_.size());
  double obj = 0.0;
  for (int j = 0; j < num_variables(); ++j) obj += variables_[j].objective * x[j];
  return obj;
}

Status LpModel::CheckFeasible(const std::vector<double>& x, double tol) const {
  if (x.size() != variables_.size()) {
    return InvalidArgumentError("assignment size mismatch");
  }
  for (int j = 0; j < num_variables(); ++j) {
    const Variable& v = variables_[j];
    if (x[j] < v.lower - tol || x[j] > v.upper + tol) {
      return InfeasibleError(StrFormat("%s = %g violates bounds [%g, %g]",
                                       v.name.c_str(), x[j], v.lower,
                                       v.upper));
    }
    if (v.is_integer && std::abs(x[j] - std::round(x[j])) > tol) {
      return InfeasibleError(
          StrFormat("%s = %g is not integral", v.name.c_str(), x[j]));
    }
  }
  for (int i = 0; i < num_constraints(); ++i) {
    const Constraint& c = constraints_[i];
    double lhs = 0.0;
    for (const auto& [col, coef] : c.terms) lhs += coef * x[col];
    const double slack = c.rhs - lhs;
    switch (c.sense) {
      case ConstraintSense::kLessEqual:
        if (slack < -tol) {
          return InfeasibleError(StrFormat("%s: %g > rhs %g", c.name.c_str(),
                                           lhs, c.rhs));
        }
        break;
      case ConstraintSense::kGreaterEqual:
        if (slack > tol) {
          return InfeasibleError(StrFormat("%s: %g < rhs %g", c.name.c_str(),
                                           lhs, c.rhs));
        }
        break;
      case ConstraintSense::kEqual:
        if (std::abs(slack) > tol) {
          return InfeasibleError(StrFormat("%s: %g != rhs %g", c.name.c_str(),
                                           lhs, c.rhs));
        }
        break;
    }
  }
  return Status::Ok();
}

}  // namespace vpart
