#ifndef VPART_LP_PRICING_H_
#define VPART_LP_PRICING_H_

#include <vector>

namespace vpart {

// ---------------------------------------------------------------------------
// Pricing rules for the simplex core.
//
// [pricing-rule:overview] A pricing rule owns *weights*, not eligibility:
// the solver (lp/simplex.cc) decides which columns/rows may enter or leave
// (variable states, bounds, Bland mode) and asks the rule to score the
// eligible ones; after each pivot it feeds the rule the pivot row/column so
// the weights can be updated incrementally. This split keeps the rules
// free of solver state and makes them swappable — see
// CONTRIBUTING.md § "How to add a pricing rule" for the recipe, and the
// [pricing-rule:*] anchors below for the seams it references.
// ---------------------------------------------------------------------------

/// Devex pricing for the primal simplex (Forrest–Goldfarb reference
/// framework, P. M. J. Harris' devex weights). Each nonbasic column j
/// carries a weight w_j approximating the steepest-edge norm of its edge
/// direction relative to the *reference framework* — the nonbasic set at
/// the last Reset(). The solver picks the eligible column maximizing
/// d_j² / w_j.
///
/// [pricing-rule:devex-update] After a pivot (entering q at pivot-row
/// value alpha_q, pivot row alpha over the nonbasic columns):
///   w_j   <- max(w_j, (alpha_j / alpha_q)² · w_q)   for nonbasic j
///   w_q'  <- max(w_q / alpha_q², 1)                 for the leaving column
/// Weights only grow between resets; when the largest weight exceeds
/// `kResetThreshold` the framework restarts from 1.0 (counted — surfaced
/// as telemetry.mip.se_resets together with the dual resets).
class DevexPricing {
 public:
  /// Largest weight tolerated before the reference framework resets.
  static constexpr double kResetThreshold = 1e7;

  /// Starts a fresh reference framework over `num_cols` columns.
  void Reset(int num_cols);

  double weight(int j) const { return weights_[j]; }

  /// Score of candidate j with reduced-cost violation `violation` (> 0).
  double Score(int j, double violation) const {
    return violation * violation / weights_[j];
  }

  /// Weight update after a basis change. `alpha_row[j]` is the pivot row in
  /// the nonbasic columns (zero where not computed), `entering`/`alpha_q`
  /// the entering column and its pivot-row entry, `leaving` the column that
  /// left the basis. Triggers a framework reset when weights explode.
  void UpdateOnPivot(const std::vector<double>& alpha_row, int entering,
                     double alpha_q, int leaving);

  long resets() const { return resets_; }

  /// All weights of the current framework (empty before the first Reset).
  /// Read-only view for the invariant auditor: every entry must stay finite
  /// and strictly positive between resets.
  const std::vector<double>& weights() const { return weights_; }

 private:
  std::vector<double> weights_;
  long resets_ = 0;
};

/// Dual steepest-edge pricing for the dual simplex (the Forrest–Goldfarb
/// "reference weights" flavor, sometimes called dual devex): each basis
/// position i carries gamma_i approximating ‖B⁻ᵀe_i‖², the squared norm of
/// row i of the basis inverse. The solver picks the primal-infeasible row
/// maximizing violation_i² / gamma_i — steepest ascent in the dual — which
/// typically halves dual pivot counts against most-infeasible selection.
///
/// [pricing-rule:dse-update] After a dual pivot with FTRANed entering
/// column w and pivot element alpha_r = w[r]:
///   gamma_i <- max(gamma_i, (w_i / alpha_r)² · gamma_r)   for i ≠ r
///   gamma_r <- max(gamma_r / alpha_r², 1)
/// Exact steepest edge would FTRAN one extra vector per pivot to update
/// the norms exactly; the reference-weight form needs no extra solves and
/// restarts from 1.0 when weights outgrow `kResetThreshold` (counted in
/// se_resets).
class DualSteepestEdgePricing {
 public:
  static constexpr double kResetThreshold = 1e7;

  /// Starts a fresh reference framework over `num_rows` basis positions.
  void Reset(int num_rows);

  double weight(int i) const { return weights_[i]; }

  double Score(int i, double violation) const {
    return violation * violation / weights_[i];
  }

  /// Weight update after a dual pivot: `w` is the FTRANed entering column
  /// (basis-position space), `r` the leaving position, `alpha_r` = w[r].
  void UpdateOnPivot(const std::vector<double>& w, int r, double alpha_r);

  long resets() const { return resets_; }

  /// See DevexPricing::weights().
  const std::vector<double>& weights() const { return weights_; }

 private:
  std::vector<double> weights_;
  long resets_ = 0;
};

}  // namespace vpart

#endif  // VPART_LP_PRICING_H_
