#include "workload/instance_io.h"

#include <fstream>
#include <sstream>
#include <unordered_map>

#include "util/string_util.h"

namespace vpart {

std::string WriteInstanceText(const Instance& instance) {
  std::ostringstream out;
  const Schema& schema = instance.schema();
  const Workload& workload = instance.workload();
  out << "# vpart instance file\n";
  out << "instance " << instance.name() << "\n";
  for (const Table& table : schema.tables()) {
    out << "table " << table.name << "\n";
    for (int a : table.attribute_ids) {
      out << "attr " << table.name << " " << schema.attribute(a).name << " "
          << StrFormat("%.17g", schema.attribute(a).width) << "\n";
    }
  }
  for (const Transaction& txn : workload.transactions()) {
    out << "txn " << txn.name << "\n";
    for (int q : txn.query_ids) {
      const Query& query = workload.query(q);
      out << "query " << txn.name << " " << query.name << " "
          << (query.is_write() ? "write" : "read") << " "
          << StrFormat("%.17g", query.frequency) << "\n";
      for (const auto& [tbl, rows] : query.table_rows) {
        out << "rows " << query.name << " " << schema.table(tbl).name << " "
            << StrFormat("%.17g", rows) << "\n";
      }
      if (!query.attributes.empty()) {
        out << "ref " << query.name;
        for (int a : query.attributes) {
          out << " " << schema.QualifiedName(a);
        }
        out << "\n";
      }
    }
  }
  return out.str();
}

StatusOr<Instance> ParseInstanceText(const std::string& text) {
  Schema schema;
  Workload workload;
  std::string name = "unnamed";

  // Queries are appended to the workload only once fully specified, so we
  // stage them here keyed by name.
  struct PendingQuery {
    int transaction_id = -1;
    Query query;
  };
  std::vector<PendingQuery> pending;
  std::unordered_map<std::string, int> pending_by_name;

  std::istringstream in(text);
  std::string line;
  int line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    std::string_view stripped = StripWhitespace(line);
    if (stripped.empty() || stripped[0] == '#') continue;
    std::vector<std::string> tok = SplitWhitespace(stripped);
    const std::string& kind = tok[0];
    auto fail = [&](const std::string& message) {
      return InvalidArgumentError(
          StrFormat("line %d: %s", line_no, message.c_str()));
    };

    if (kind == "instance") {
      if (tok.size() != 2) return fail("expected: instance <name>");
      name = tok[1];
    } else if (kind == "table") {
      if (tok.size() != 2) return fail("expected: table <name>");
      auto result = schema.AddTable(tok[1]);
      if (!result.ok()) return fail(result.status().message());
    } else if (kind == "attr") {
      if (tok.size() != 4) return fail("expected: attr <table> <name> <width>");
      auto table = schema.FindTable(tok[1]);
      if (!table.ok()) return fail(table.status().message());
      double width = 0;
      if (!ParseDouble(tok[3], &width)) return fail("bad width: " + tok[3]);
      auto result = schema.AddAttribute(table.value(), tok[2], width);
      if (!result.ok()) return fail(result.status().message());
    } else if (kind == "txn") {
      if (tok.size() != 2) return fail("expected: txn <name>");
      auto result = workload.AddTransaction(tok[1]);
      if (!result.ok()) return fail(result.status().message());
    } else if (kind == "query") {
      if (tok.size() != 5) {
        return fail("expected: query <txn> <name> <read|write> <freq>");
      }
      auto txn = workload.FindTransaction(tok[1]);
      if (!txn.ok()) return fail(txn.status().message());
      if (pending_by_name.count(tok[2]) > 0) {
        return fail("duplicate query name: " + tok[2]);
      }
      PendingQuery pq;
      pq.transaction_id = txn.value();
      pq.query.name = tok[2];
      if (tok[3] == "read") {
        pq.query.kind = QueryKind::kRead;
      } else if (tok[3] == "write") {
        pq.query.kind = QueryKind::kWrite;
      } else {
        return fail("query kind must be read or write, got " + tok[3]);
      }
      if (!ParseDouble(tok[4], &pq.query.frequency)) {
        return fail("bad frequency: " + tok[4]);
      }
      pending_by_name[tok[2]] = static_cast<int>(pending.size());
      pending.push_back(std::move(pq));
    } else if (kind == "rows") {
      if (tok.size() != 4) return fail("expected: rows <query> <table> <n>");
      auto it = pending_by_name.find(tok[1]);
      if (it == pending_by_name.end()) return fail("unknown query: " + tok[1]);
      auto table = schema.FindTable(tok[2]);
      if (!table.ok()) return fail(table.status().message());
      double rows = 0;
      if (!ParseDouble(tok[3], &rows)) return fail("bad rows: " + tok[3]);
      pending[it->second].query.table_rows.emplace_back(table.value(), rows);
    } else if (kind == "ref") {
      if (tok.size() < 3) return fail("expected: ref <query> <attr>...");
      auto it = pending_by_name.find(tok[1]);
      if (it == pending_by_name.end()) return fail("unknown query: " + tok[1]);
      for (size_t i = 2; i < tok.size(); ++i) {
        auto attr = schema.FindAttribute(tok[i]);
        if (!attr.ok()) return fail(attr.status().message());
        pending[it->second].query.attributes.push_back(attr.value());
      }
    } else {
      return fail("unknown directive: " + kind);
    }
  }

  for (auto& pq : pending) {
    auto result = workload.AddQuery(pq.transaction_id, std::move(pq.query));
    if (!result.ok()) return result.status();
  }
  return Instance::Create(std::move(name), std::move(schema),
                          std::move(workload));
}

Status WriteInstanceFile(const Instance& instance, const std::string& path) {
  std::ofstream out(path);
  if (!out) return InternalError("cannot open for writing: " + path);
  out << WriteInstanceText(instance);
  if (!out) return InternalError("write failed: " + path);
  return Status::Ok();
}

StatusOr<Instance> ReadInstanceFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) return NotFoundError("cannot open: " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return ParseInstanceText(buffer.str());
}

}  // namespace vpart
