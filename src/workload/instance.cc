#include "workload/instance.h"

#include <algorithm>
#include <cassert>
#include <set>

#include "util/string_util.h"

namespace vpart {

StatusOr<Instance> Instance::Create(std::string name, Schema schema,
                                    Workload workload) {
  Instance instance;
  instance.name_ = std::move(name);
  instance.schema_ = std::move(schema);
  instance.workload_ = std::move(workload);
  VPART_RETURN_IF_ERROR(instance.BuildDerived());
  return instance;
}

Status Instance::BuildDerived() {
  const int num_a = num_attributes();
  const int num_q = num_queries();
  const int num_t = num_transactions();
  if (num_a == 0) return InvalidArgumentError("instance has no attributes");
  if (num_t == 0) return InvalidArgumentError("instance has no transactions");

  alpha_.assign(static_cast<size_t>(num_a) * num_q, 0);
  beta_.assign(static_cast<size_t>(num_a) * num_q, 0);
  weight_.assign(static_cast<size_t>(num_a) * num_q, 0.0);
  phi_.assign(static_cast<size_t>(num_a) * num_t, 0);
  read_set_.assign(num_t, {});
  touched_.assign(num_t, {});
  total_weight_ = 0.0;

  for (int q = 0; q < num_q; ++q) {
    const Query& query = workload_.query(q);
    // Check that every referenced attribute's table is listed.
    for (int a : query.attributes) {
      if (a < 0 || a >= num_a) {
        return OutOfRangeError(StrFormat(
            "query %s references attribute id %d out of range",
            query.name.c_str(), a));
      }
      const int tbl = schema_.attribute(a).table_id;
      if (query.RowsInTable(tbl) <= 0) {
        return InvalidArgumentError(StrFormat(
            "query %s references %s but lists no row count for table %s",
            query.name.c_str(), schema_.QualifiedName(a).c_str(),
            schema_.table(tbl).name.c_str()));
      }
      alpha_[Idx(a, q)] = 1;
    }
    // β and W: every attribute of every accessed table.
    std::set<int> seen_tables;
    for (const auto& [tbl, rows] : query.table_rows) {
      if (tbl < 0 || tbl >= schema_.num_tables()) {
        return OutOfRangeError(StrFormat("query %s accesses table id %d out of range",
                                         query.name.c_str(), tbl));
      }
      if (!seen_tables.insert(tbl).second) {
        return InvalidArgumentError(StrFormat(
            "query %s lists table %s twice", query.name.c_str(),
            schema_.table(tbl).name.c_str()));
      }
      for (int a : schema_.table(tbl).attribute_ids) {
        beta_[Idx(a, q)] = 1;
        weight_[Idx(a, q)] =
            schema_.attribute(a).width * query.frequency * rows;
        total_weight_ += weight_[Idx(a, q)];
      }
    }
    // φ and read sets.
    if (!query.is_write()) {
      const int t = query.transaction_id;
      for (int a : query.attributes) {
        phi_[static_cast<size_t>(a) * num_t + t] = 1;
      }
    }
  }

  for (int t = 0; t < num_t; ++t) {
    std::set<int> touched;
    for (int q : workload_.transaction(t).query_ids) {
      const Query& query = workload_.query(q);
      for (const auto& [tbl, rows] : query.table_rows) {
        (void)rows;
        for (int a : schema_.table(tbl).attribute_ids) touched.insert(a);
      }
    }
    touched_[t].assign(touched.begin(), touched.end());
    for (int a = 0; a < num_a; ++a) {
      if (phi(a, t)) read_set_[t].push_back(a);
    }
  }
  return Status::Ok();
}

int InstanceBuilder::AddTable(const std::string& name) {
  auto result = schema_.AddTable(name);
  assert(result.ok());
  return result.value();
}

int InstanceBuilder::AddAttribute(int table_id, const std::string& name,
                                  double width) {
  auto result = schema_.AddAttribute(table_id, name, width);
  assert(result.ok());
  return result.value();
}

int InstanceBuilder::AddTransaction(const std::string& name) {
  auto result = workload_.AddTransaction(name);
  assert(result.ok());
  return result.value();
}

int InstanceBuilder::AddQuery(int transaction_id, const std::string& name,
                              QueryKind kind, double frequency,
                              std::vector<int> attributes,
                              std::vector<std::pair<int, double>> table_rows,
                              double default_rows) {
  Query query;
  query.name = name;
  query.kind = kind;
  query.frequency = frequency;
  query.attributes = std::move(attributes);
  query.table_rows = std::move(table_rows);
  // Auto-add tables owning referenced attributes.
  for (int a : query.attributes) {
    assert(a >= 0 && a < schema_.num_attributes());
    const int tbl = schema_.attribute(a).table_id;
    if (query.RowsInTable(tbl) <= 0) {
      query.table_rows.emplace_back(tbl, default_rows);
    }
  }
  auto result = workload_.AddQuery(transaction_id, std::move(query));
  assert(result.ok());
  return result.value();
}

std::pair<int, int> InstanceBuilder::AddUpdateQuery(
    int transaction_id, const std::string& name, double frequency,
    std::vector<int> read_attributes, std::vector<int> written_attributes,
    double rows) {
  // Read sub-query references everything the UPDATE touches (predicate
  // columns and written columns alike).
  std::vector<int> all = read_attributes;
  all.insert(all.end(), written_attributes.begin(), written_attributes.end());
  int read_id = AddQuery(transaction_id, name + ".r", QueryKind::kRead,
                         frequency, std::move(all), {}, rows);
  int write_id = AddQuery(transaction_id, name + ".w", QueryKind::kWrite,
                          frequency, std::move(written_attributes), {}, rows);
  return {read_id, write_id};
}

StatusOr<Instance> InstanceBuilder::Build() {
  return Instance::Create(std::move(name_), std::move(schema_),
                          std::move(workload_));
}

}  // namespace vpart
