#ifndef VPART_WORKLOAD_SCHEMA_H_
#define VPART_WORKLOAD_SCHEMA_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "util/status.h"

namespace vpart {

/// A column of a table. `width` is the average width in bytes (the paper's
/// w_a); identifiers are dense indices into Schema's vectors.
struct Attribute {
  int id = -1;
  int table_id = -1;
  std::string name;    // attribute name within its table, e.g. "C_BALANCE"
  double width = 0.0;  // average width in bytes (w_a)
};

/// A relational table: a named set of attributes.
struct Table {
  int id = -1;
  std::string name;
  std::vector<int> attribute_ids;  // in declaration order
};

/// A relational schema: tables and their attributes, with name lookup.
/// Attribute ids are global across the schema (the paper's set A).
class Schema {
 public:
  /// Adds a table; returns its id. Fails on duplicate names.
  StatusOr<int> AddTable(const std::string& name);

  /// Adds an attribute to `table_id`; returns its global id.
  StatusOr<int> AddAttribute(int table_id, const std::string& name,
                             double width);

  int num_tables() const { return static_cast<int>(tables_.size()); }
  int num_attributes() const { return static_cast<int>(attributes_.size()); }

  const Table& table(int id) const { return tables_[id]; }
  const Attribute& attribute(int id) const { return attributes_[id]; }
  const std::vector<Table>& tables() const { return tables_; }
  const std::vector<Attribute>& attributes() const { return attributes_; }

  /// Table id by name, or error.
  StatusOr<int> FindTable(const std::string& name) const;

  /// Attribute id by "Table.Attribute" qualified name, or error.
  StatusOr<int> FindAttribute(const std::string& qualified_name) const;

  /// "Table.Attribute" display name for an attribute id.
  std::string QualifiedName(int attribute_id) const;

 private:
  std::vector<Table> tables_;
  std::vector<Attribute> attributes_;
  std::unordered_map<std::string, int> table_by_name_;
  std::unordered_map<std::string, int> attribute_by_qualified_name_;
};

}  // namespace vpart

#endif  // VPART_WORKLOAD_SCHEMA_H_
