#ifndef VPART_WORKLOAD_INSTANCE_IO_H_
#define VPART_WORKLOAD_INSTANCE_IO_H_

#include <string>

#include "util/status.h"
#include "workload/instance.h"

namespace vpart {

/// Serializes an instance to the textual `.vpi` format:
///
///   instance <name>
///   table <table>
///   attr <table> <attribute> <width>
///   txn <transaction>
///   query <transaction> <query> <read|write> <frequency>
///   rows <query> <table> <avg-rows>
///   ref <query> <table>.<attribute> ...
///
/// Lines beginning with '#' and blank lines are ignored by the parser.
std::string WriteInstanceText(const Instance& instance);

/// Parses the `.vpi` format produced by WriteInstanceText.
StatusOr<Instance> ParseInstanceText(const std::string& text);

/// File variants.
Status WriteInstanceFile(const Instance& instance, const std::string& path);
StatusOr<Instance> ReadInstanceFile(const std::string& path);

}  // namespace vpart

#endif  // VPART_WORKLOAD_INSTANCE_IO_H_
