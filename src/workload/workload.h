#ifndef VPART_WORKLOAD_WORKLOAD_H_
#define VPART_WORKLOAD_WORKLOAD_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "util/status.h"
#include "workload/schema.h"

namespace vpart {

/// Read vs. write classification of a query (the paper's δ_q). Following
/// §5.2, SQL UPDATE statements should be modeled as two sub-queries: a read
/// query over every referenced attribute and a write query over the written
/// attributes only; `InstanceBuilder::AddUpdateQuery` automates this.
enum class QueryKind { kRead, kWrite };

/// One query of the workload, described by its statistical footprint:
/// which attributes it references (α), which tables it accesses (β via the
/// table's attributes), its frequency f_q, and the average number of rows
/// n_{r,q} it touches in each accessed table.
struct Query {
  int id = -1;
  int transaction_id = -1;
  std::string name;
  QueryKind kind = QueryKind::kRead;
  double frequency = 1.0;

  /// Referenced attribute ids (the paper's α_{a,q} support), deduplicated.
  std::vector<int> attributes;

  /// Per accessed table: (table id, average rows retrieved/written).
  /// Every table owning a referenced attribute must appear here; tables may
  /// also appear with no referenced attribute (e.g. COUNT(*) style access).
  std::vector<std::pair<int, double>> table_rows;

  bool is_write() const { return kind == QueryKind::kWrite; }

  /// Rows accessed in `table_id`, or 0 if the table is not accessed.
  double RowsInTable(int table_id) const;
};

/// A transaction: an ordered group of queries executed at one primary site.
struct Transaction {
  int id = -1;
  std::string name;
  std::vector<int> query_ids;
};

/// The workload: all transactions and their queries (the paper's T and Q).
class Workload {
 public:
  /// Adds a transaction; returns its id. Fails on duplicate names.
  StatusOr<int> AddTransaction(const std::string& name);

  /// Adds a fully-specified query to a transaction; returns the query id.
  /// Attribute lists are deduplicated; table_rows must cover every table
  /// that owns a referenced attribute (validated by Instance::Create).
  StatusOr<int> AddQuery(int transaction_id, Query query);

  int num_transactions() const {
    return static_cast<int>(transactions_.size());
  }
  int num_queries() const { return static_cast<int>(queries_.size()); }

  const Transaction& transaction(int id) const { return transactions_[id]; }
  const Query& query(int id) const { return queries_[id]; }
  const std::vector<Transaction>& transactions() const {
    return transactions_;
  }
  const std::vector<Query>& queries() const { return queries_; }

  StatusOr<int> FindTransaction(const std::string& name) const;

 private:
  std::vector<Transaction> transactions_;
  std::vector<Query> queries_;
  std::unordered_map<std::string, int> transaction_by_name_;
};

}  // namespace vpart

#endif  // VPART_WORKLOAD_WORKLOAD_H_
