#include "workload/schema.h"

#include "util/string_util.h"

namespace vpart {

StatusOr<int> Schema::AddTable(const std::string& name) {
  if (name.empty()) return InvalidArgumentError("table name must not be empty");
  if (table_by_name_.count(name) > 0) {
    return AlreadyExistsError("duplicate table name: " + name);
  }
  Table table;
  table.id = static_cast<int>(tables_.size());
  table.name = name;
  table_by_name_[name] = table.id;
  tables_.push_back(std::move(table));
  return tables_.back().id;
}

StatusOr<int> Schema::AddAttribute(int table_id, const std::string& name,
                                   double width) {
  if (table_id < 0 || table_id >= num_tables()) {
    return OutOfRangeError(StrFormat("table id %d out of range", table_id));
  }
  if (name.empty()) {
    return InvalidArgumentError("attribute name must not be empty");
  }
  if (width <= 0) {
    return InvalidArgumentError(
        StrFormat("attribute %s must have positive width", name.c_str()));
  }
  const std::string qualified = tables_[table_id].name + "." + name;
  if (attribute_by_qualified_name_.count(qualified) > 0) {
    return AlreadyExistsError("duplicate attribute: " + qualified);
  }
  Attribute attr;
  attr.id = static_cast<int>(attributes_.size());
  attr.table_id = table_id;
  attr.name = name;
  attr.width = width;
  attribute_by_qualified_name_[qualified] = attr.id;
  tables_[table_id].attribute_ids.push_back(attr.id);
  attributes_.push_back(std::move(attr));
  return attributes_.back().id;
}

StatusOr<int> Schema::FindTable(const std::string& name) const {
  auto it = table_by_name_.find(name);
  if (it == table_by_name_.end()) {
    return NotFoundError("no such table: " + name);
  }
  return it->second;
}

StatusOr<int> Schema::FindAttribute(const std::string& qualified_name) const {
  auto it = attribute_by_qualified_name_.find(qualified_name);
  if (it == attribute_by_qualified_name_.end()) {
    return NotFoundError("no such attribute: " + qualified_name);
  }
  return it->second;
}

std::string Schema::QualifiedName(int attribute_id) const {
  const Attribute& attr = attributes_[attribute_id];
  return tables_[attr.table_id].name + "." + attr.name;
}

}  // namespace vpart
