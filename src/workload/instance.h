#ifndef VPART_WORKLOAD_INSTANCE_H_
#define VPART_WORKLOAD_INSTANCE_H_

#include <memory>
#include <string>
#include <vector>

#include "util/status.h"
#include "workload/schema.h"
#include "workload/workload.h"

namespace vpart {

/// An immutable, validated vertical-partitioning problem instance: a schema,
/// a workload and all the static constants the paper's cost model derives
/// from them (α, β, γ, δ, φ, and the weights W_{a,q} = w_a·f_q·n_{r,q}).
///
/// Create one via `Instance::Create` (takes ownership and validates) or via
/// `InstanceBuilder` (incremental construction with UPDATE splitting).
class Instance {
 public:
  /// An empty instance; only useful as a placeholder to move into. All
  /// meaningful instances come from Create().
  Instance() = default;

  /// Validates and finalizes: every attribute referenced by a query must
  /// belong to a table listed in the query's `table_rows`.
  static StatusOr<Instance> Create(std::string name, Schema schema,
                                   Workload workload);

  const std::string& name() const { return name_; }
  const Schema& schema() const { return schema_; }
  const Workload& workload() const { return workload_; }

  int num_attributes() const { return schema_.num_attributes(); }
  int num_queries() const { return workload_.num_queries(); }
  int num_transactions() const { return workload_.num_transactions(); }

  /// α_{a,q}: query q references attribute a itself.
  bool alpha(int a, int q) const { return alpha_[Idx(a, q)] != 0; }
  /// β_{a,q}: a belongs to a table that q accesses.
  bool beta(int a, int q) const { return beta_[Idx(a, q)] != 0; }
  /// δ_q: q is a write query.
  bool is_write(int q) const { return workload_.query(q).is_write(); }
  /// γ_{q,t}: q belongs to transaction t.
  bool gamma(int q, int t) const {
    return workload_.query(q).transaction_id == t;
  }
  /// φ_{a,t}: some read query of transaction t references attribute a.
  bool phi(int a, int t) const {
    return phi_[static_cast<size_t>(a) * num_transactions() + t] != 0;
  }

  /// W_{a,q} = w_a · f_q · n_{r(a),q}; zero when β_{a,q} = 0.
  double W(int a, int q) const { return weight_[Idx(a, q)]; }

  /// Attributes read by transaction t (the φ support of t), sorted.
  const std::vector<int>& ReadSetOfTransaction(int t) const {
    return read_set_[t];
  }

  /// Attributes of tables accessed by any query of t (β support over t's
  /// queries), sorted. These are the only attributes with c1/c3 ≠ 0 for t.
  const std::vector<int>& TouchedAttributesOfTransaction(int t) const {
    return touched_[t];
  }

  /// Total workload frequency-weighted bytes of the widest possible row
  /// layout; a scale reference for reports.
  double TotalWeight() const { return total_weight_; }

 private:
  size_t Idx(int a, int q) const {
    return static_cast<size_t>(a) * num_queries() + q;
  }

  Status BuildDerived();

  std::string name_;
  Schema schema_;
  Workload workload_;

  // Dense |A| x |Q| indicators and weights.
  std::vector<uint8_t> alpha_;
  std::vector<uint8_t> beta_;
  std::vector<double> weight_;
  // Dense |A| x |T| read indicator.
  std::vector<uint8_t> phi_;
  std::vector<std::vector<int>> read_set_;  // per transaction
  std::vector<std::vector<int>> touched_;   // per transaction
  double total_weight_ = 0.0;
};

/// Incremental construction helper with the paper's UPDATE modeling rule.
class InstanceBuilder {
 public:
  explicit InstanceBuilder(std::string name) : name_(std::move(name)) {}

  /// Schema construction; CHECK-fails (asserts) on structural misuse so that
  /// hand-written instance definitions stay terse. Returns ids.
  int AddTable(const std::string& name);
  int AddAttribute(int table_id, const std::string& name, double width);
  int AddTransaction(const std::string& name);

  /// Adds a read or write query. `attributes` are referenced attribute ids;
  /// `table_rows` lists (table, avg rows). Tables owning referenced
  /// attributes that are missing from `table_rows` are auto-added with the
  /// given `default_rows` (1 row unless overridden).
  int AddQuery(int transaction_id, const std::string& name, QueryKind kind,
               double frequency, std::vector<int> attributes,
               std::vector<std::pair<int, double>> table_rows = {},
               double default_rows = 1.0);

  /// §5.2: models an SQL UPDATE as a read sub-query over all referenced
  /// attributes plus a write sub-query over the written attributes.
  /// Returns the pair (read query id, write query id).
  std::pair<int, int> AddUpdateQuery(int transaction_id,
                                     const std::string& name,
                                     double frequency,
                                     std::vector<int> read_attributes,
                                     std::vector<int> written_attributes,
                                     double rows = 1.0);

  const Schema& schema() const { return schema_; }

  /// Validates and returns the finished instance.
  StatusOr<Instance> Build();

 private:
  std::string name_;
  Schema schema_;
  Workload workload_;
};

}  // namespace vpart

#endif  // VPART_WORKLOAD_INSTANCE_H_
