#include "workload/workload.h"

#include <algorithm>

#include "util/string_util.h"

namespace vpart {

double Query::RowsInTable(int table_id) const {
  for (const auto& [tbl, rows] : table_rows) {
    if (tbl == table_id) return rows;
  }
  return 0.0;
}

StatusOr<int> Workload::AddTransaction(const std::string& name) {
  if (name.empty()) {
    return InvalidArgumentError("transaction name must not be empty");
  }
  if (transaction_by_name_.count(name) > 0) {
    return AlreadyExistsError("duplicate transaction name: " + name);
  }
  Transaction txn;
  txn.id = static_cast<int>(transactions_.size());
  txn.name = name;
  transaction_by_name_[name] = txn.id;
  transactions_.push_back(std::move(txn));
  return transactions_.back().id;
}

StatusOr<int> Workload::AddQuery(int transaction_id, Query query) {
  if (transaction_id < 0 || transaction_id >= num_transactions()) {
    return OutOfRangeError(
        StrFormat("transaction id %d out of range", transaction_id));
  }
  if (query.frequency <= 0) {
    return InvalidArgumentError("query frequency must be positive: " +
                                query.name);
  }
  for (const auto& [tbl, rows] : query.table_rows) {
    (void)tbl;
    if (rows <= 0) {
      return InvalidArgumentError("query table rows must be positive: " +
                                  query.name);
    }
  }
  std::sort(query.attributes.begin(), query.attributes.end());
  query.attributes.erase(
      std::unique(query.attributes.begin(), query.attributes.end()),
      query.attributes.end());
  query.id = static_cast<int>(queries_.size());
  query.transaction_id = transaction_id;
  if (query.name.empty()) {
    query.name = StrFormat("q%d", query.id);
  }
  transactions_[transaction_id].query_ids.push_back(query.id);
  queries_.push_back(std::move(query));
  return queries_.back().id;
}

StatusOr<int> Workload::FindTransaction(const std::string& name) const {
  auto it = transaction_by_name_.find(name);
  if (it == transaction_by_name_.end()) {
    return NotFoundError("no such transaction: " + name);
  }
  return it->second;
}

}  // namespace vpart
