#include "cost/cost_coefficients.h"

#include <algorithm>
#include <cassert>
#include <utility>

namespace vpart {

std::shared_ptr<const Instance> BorrowInstance(const Instance& instance) {
  // Aliasing constructor with an empty owner: no control block, no
  // ownership — a shared_ptr-shaped raw pointer for scoped lifetimes.
  return std::shared_ptr<const Instance>(std::shared_ptr<const Instance>(),
                                         &instance);
}

CostCoefficients::CostCoefficients(std::shared_ptr<const Instance> instance,
                                   CostParams params, std::string backend)
    : instance_(std::move(instance)),
      params_(params),
      backend_(std::move(backend)) {
  assert(instance_ != nullptr);
}

CostCoefficients::CostCoefficients(const CostCoefficients& other,
                                   std::string backend)
    : instance_(other.instance_),
      params_(other.params_),
      backend_(std::move(backend)),
      c1_(other.c1_),
      c2_(other.c2_),
      c3_(other.c3_),
      c4_(other.c4_) {}

double CostCoefficients::Objective(const Partitioning& partitioning) const {
  const int num_a = instance_->num_attributes();
  const int num_t = instance_->num_transactions();
  double objective = 0.0;
  for (int t = 0; t < num_t; ++t) {
    const int s = partitioning.SiteOfTransaction(t);
    assert(s >= 0 && s < partitioning.num_sites());
    for (int a : instance_->TouchedAttributesOfTransaction(t)) {
      if (partitioning.HasAttribute(a, s)) objective += c1_[IdxTA(t, a)];
    }
  }
  for (int a = 0; a < num_a; ++a) {
    if (c2_[a] != 0.0) objective += c2_[a] * partitioning.ReplicaCount(a);
  }
  return objective;
}

CostBreakdown CostCoefficients::Breakdown(
    const Partitioning& partitioning) const {
  CostBreakdown breakdown;
  const Workload& workload = instance_->workload();
  // A_R: for each read query, all attributes of accessed tables found on the
  // transaction's site (single-sitedness guarantees the referenced ones are
  // there; β-siblings are charged when co-located, matching the model).
  for (int t = 0; t < instance_->num_transactions(); ++t) {
    const int s = partitioning.SiteOfTransaction(t);
    for (int a : instance_->TouchedAttributesOfTransaction(t)) {
      if (partitioning.HasAttribute(a, s)) {
        breakdown.read_access += c3_[IdxTA(t, a)];
      }
    }
  }
  // A_W: write queries write to every site holding a fraction of an accessed
  // table ("access all attributes" accounting).
  for (int a = 0; a < instance_->num_attributes(); ++a) {
    breakdown.write_access += c4_[a] * partitioning.ReplicaCount(a);
  }
  // B: write queries ship each written attribute to every replica site other
  // than their own transaction's site.
  for (int q = 0; q < instance_->num_queries(); ++q) {
    const Query& query = workload.query(q);
    if (!query.is_write()) continue;
    const int s = partitioning.SiteOfTransaction(query.transaction_id);
    for (int a : query.attributes) {
      int remote = partitioning.ReplicaCount(a) -
                   (partitioning.HasAttribute(a, s) ? 1 : 0);
      breakdown.transfer += TransferWeight(a, q) * remote;
    }
  }
  breakdown.total = breakdown.read_access + breakdown.write_access +
                    params_.p * breakdown.transfer;
  return breakdown;
}

double CostCoefficients::SiteLoad(const Partitioning& partitioning,
                                  int s) const {
  double load = 0.0;
  for (int t = 0; t < instance_->num_transactions(); ++t) {
    if (partitioning.SiteOfTransaction(t) != s) continue;
    for (int a : instance_->TouchedAttributesOfTransaction(t)) {
      if (partitioning.HasAttribute(a, s)) load += c3_[IdxTA(t, a)];
    }
  }
  for (int a = 0; a < instance_->num_attributes(); ++a) {
    if (c4_[a] != 0.0 && partitioning.HasAttribute(a, s)) load += c4_[a];
  }
  return load;
}

double CostCoefficients::MaxLoad(const Partitioning& partitioning) const {
  double max_load = 0.0;
  for (int s = 0; s < partitioning.num_sites(); ++s) {
    max_load = std::max(max_load, SiteLoad(partitioning, s));
  }
  return max_load;
}

double CostCoefficients::ScalarizedObjective(
    const Partitioning& partitioning) const {
  return (1.0 - params_.lambda) * Objective(partitioning) +
         params_.lambda * MaxLoad(partitioning);
}

double CostCoefficients::TransactionOnSiteCost(const Partitioning& partitioning,
                                               int t, int s) const {
  double cost = 0.0;
  for (int a : instance_->TouchedAttributesOfTransaction(t)) {
    if (partitioning.HasAttribute(a, s)) cost += c1_[IdxTA(t, a)];
  }
  return cost;
}

double CostCoefficients::AttributeOnSiteCost(const Partitioning& partitioning,
                                             int a, int s) const {
  double cost = c2_[a];
  for (int t = 0; t < instance_->num_transactions(); ++t) {
    if (partitioning.SiteOfTransaction(t) == s) cost += c1_[IdxTA(t, a)];
  }
  return cost;
}

}  // namespace vpart
