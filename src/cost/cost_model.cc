#include "cost/cost_model.h"

#include <cassert>
#include <utility>

#include "cost/cost_model_registry.h"

namespace vpart {

CostModel::CostModel(std::shared_ptr<const Instance> instance,
                     CostParams params)
    : CostCoefficients(std::move(instance), params, kCostModelPaper) {
  Precompute();
}

CostModel::CostModel(const Instance* instance, CostParams params)
    : CostModel((assert(instance != nullptr), BorrowInstance(*instance)),
                params) {}

std::unique_ptr<CostCoefficients> CostModel::Rebind(
    std::shared_ptr<const Instance> instance) const {
  return std::make_unique<CostModel>(std::move(instance), params());
}

}  // namespace vpart
