#ifndef VPART_COST_COST_MODEL_SPEC_H_
#define VPART_COST_COST_MODEL_SPEC_H_

#include <string>

#include "util/status.h"

namespace vpart {

/// Built-in cost-model registry names (see cost/cost_model_registry.h).
inline constexpr const char* kCostModelPaper = "paper";
inline constexpr const char* kCostModelCacheline = "cacheline";
inline constexpr const char* kCostModelDiskPage = "disk_page";

/// Knobs of the "cacheline" backend: a main-memory store whose storage
/// layer moves whole cache lines, generalizing the paper's byte-exact model
/// (§2's W_{a,q}) with line-granular access, per-row framing overhead, and
/// read/write asymmetry. With line_bytes -> 0, header 0 and factors 1 it
/// degenerates to the paper's physics.
struct CachelineCostOptions {
  /// Cache line (coherence granule) size; every per-row access to an
  /// attribute pays whole lines: ceil((row_header_bytes + w_a)/line_bytes).
  double line_bytes = 64.0;
  /// Per-row framing the storage layer co-locates with each attribute
  /// fragment (null bitmap, tuple header share, padding).
  double row_header_bytes = 4.0;
  /// Storage-layer multiplier for read accesses.
  double read_factor = 1.0;
  /// Storage-layer multiplier for write accesses: read-modify-write plus
  /// coherence invalidation makes stores more expensive than loads.
  double write_factor = 2.0;
  /// Per-value framing added to each attribute shipped between sites
  /// (serialization header); the wire itself stays byte-granular.
  double transfer_header_bytes = 0.0;
};

/// Knobs of the "disk_page" backend: classic Navathe-style vertical
/// partitioning for a row store on disk — the storage layer fetches whole
/// pages, every access pays a seek, and writes are amplified by logging.
/// Network transfer is priced in raw bytes; the scenario targets local or
/// SAN-attached placement, so requests usually set cost.p low or 0.
struct DiskPageCostOptions {
  /// Disk page (block) size; accessing n rows of attribute a transfers
  /// ceil(n·w_a / page_bytes) pages.
  double page_bytes = 8192.0;
  /// Per-access positioning overhead in page-transfer units (seek +
  /// rotational delay expressed as equivalent page reads).
  double seek_pages = 1.0;
  /// Write amplification (write-ahead log + in-place page write).
  double write_factor = 2.0;
};

/// Typed cost-model selection carried by AdviseRequest, mirroring the
/// solver side: a registry backend name plus per-backend option blocks.
/// Each block only applies when the named backend runs; unrelated blocks
/// are ignored. JSON binding (with unknown-key rejection) lives in
/// api/request_json.cc.
struct CostModelSpec {
  /// Cost-model registry name: "paper", "cacheline", "disk_page", or any
  /// custom-registered backend.
  std::string backend = kCostModelPaper;
  CachelineCostOptions cacheline;
  DiskPageCostOptions disk_page;
};

/// Structural validation of the per-backend blocks (positive sizes,
/// non-negative factors). Backend-name resolution happens in the registry.
Status ValidateCostModelSpec(const CostModelSpec& spec);

}  // namespace vpart

#endif  // VPART_COST_COST_MODEL_SPEC_H_
