#include "cost/cost_model_registry.h"

#include <utility>

#include "cost/cost_backends.h"
#include "cost/cost_model.h"
#include "util/string_util.h"

namespace vpart {
namespace {

Status ValidatePositive(const char* name, double value) {
  if (!(value > 0.0)) {
    return InvalidArgumentError(StrFormat("%s must be > 0 (got %g)", name,
                                          value));
  }
  return Status::Ok();
}

Status ValidateNonNegative(const char* name, double value) {
  if (!(value >= 0.0)) {
    return InvalidArgumentError(StrFormat("%s must be >= 0 (got %g)", name,
                                          value));
  }
  return Status::Ok();
}

void RegisterBuiltins(CostModelRegistry& registry) {
  CostBackendCapabilities paper;
  paper.description =
      "the paper's byte-exact main-memory model (W = w*f*n)";
  registry.Register(
      kCostModelPaper, paper,
      [](std::shared_ptr<const Instance> instance, const CostParams& params,
         const CostModelSpec&)
          -> StatusOr<std::shared_ptr<const CostCoefficients>> {
        return std::shared_ptr<const CostCoefficients>(
            std::make_shared<CostModel>(std::move(instance), params));
      });

  CostBackendCapabilities cacheline;
  cacheline.additive_widths = false;  // whole-line rounding per attribute
  cacheline.description =
      "cache-line-granular main-memory store with read/write asymmetry";
  registry.Register(
      kCostModelCacheline, cacheline,
      [](std::shared_ptr<const Instance> instance, const CostParams& params,
         const CostModelSpec& spec)
          -> StatusOr<std::shared_ptr<const CostCoefficients>> {
        const CachelineCostOptions& o = spec.cacheline;
        VPART_RETURN_IF_ERROR(
            ValidatePositive("cacheline.line_bytes", o.line_bytes));
        VPART_RETURN_IF_ERROR(ValidateNonNegative("cacheline.row_header_bytes",
                                                  o.row_header_bytes));
        VPART_RETURN_IF_ERROR(
            ValidateNonNegative("cacheline.read_factor", o.read_factor));
        VPART_RETURN_IF_ERROR(
            ValidateNonNegative("cacheline.write_factor", o.write_factor));
        VPART_RETURN_IF_ERROR(ValidateNonNegative(
            "cacheline.transfer_header_bytes", o.transfer_header_bytes));
        return std::shared_ptr<const CostCoefficients>(
            std::make_shared<CachelineCostModel>(std::move(instance), params,
                                                 o));
      });

  CostBackendCapabilities disk_page;
  disk_page.network_transfer = false;  // local/SAN row store on disk
  disk_page.additive_widths = false;   // whole-page rounding + seeks
  disk_page.description =
      "Navathe-style block-access model for a row store on disk";
  registry.Register(
      kCostModelDiskPage, disk_page,
      [](std::shared_ptr<const Instance> instance, const CostParams& params,
         const CostModelSpec& spec)
          -> StatusOr<std::shared_ptr<const CostCoefficients>> {
        const DiskPageCostOptions& o = spec.disk_page;
        VPART_RETURN_IF_ERROR(
            ValidatePositive("disk_page.page_bytes", o.page_bytes));
        VPART_RETURN_IF_ERROR(
            ValidateNonNegative("disk_page.seek_pages", o.seek_pages));
        VPART_RETURN_IF_ERROR(
            ValidateNonNegative("disk_page.write_factor", o.write_factor));
        return std::shared_ptr<const CostCoefficients>(
            std::make_shared<DiskPageCostModel>(std::move(instance), params,
                                                o));
      });
}

}  // namespace

Status ValidateCostModelSpec(const CostModelSpec& spec) {
  if (spec.backend.empty()) {
    return InvalidArgumentError("cost_model.backend must not be empty");
  }
  // Only the selected backend's block applies ("unrelated blocks are
  // ignored" — cost_model_spec.h); its factory re-validates on Build.
  if (spec.backend == kCostModelCacheline) {
    VPART_RETURN_IF_ERROR(
        ValidatePositive("cacheline.line_bytes", spec.cacheline.line_bytes));
  }
  if (spec.backend == kCostModelDiskPage) {
    VPART_RETURN_IF_ERROR(
        ValidatePositive("disk_page.page_bytes", spec.disk_page.page_bytes));
  }
  return Status::Ok();
}

CostModelRegistry& CostModelRegistry::Global() {
  static CostModelRegistry* registry = []() {
    auto* r = new CostModelRegistry();
    RegisterBuiltins(*r);
    return r;
  }();
  return *registry;
}

Status CostModelRegistry::Register(const std::string& name,
                                   CostBackendCapabilities capabilities,
                                   CostModelFactory factory) {
  if (name.empty()) {
    return InvalidArgumentError("invalid cost model name: ''");
  }
  if (factory == nullptr) {
    return InvalidArgumentError("cost model factory must not be null");
  }
  std::lock_guard<std::mutex> lock(mu_);
  auto [it, inserted] = backends_.emplace(
      name, Entry{std::move(capabilities), std::move(factory)});
  (void)it;
  if (!inserted) {
    return AlreadyExistsError("cost model '" + name +
                              "' already registered");
  }
  return Status::Ok();
}

Status CostModelRegistry::Unregister(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  if (backends_.erase(name) == 0) {
    return NotFoundError("cost model '" + name + "' not registered");
  }
  return Status::Ok();
}

bool CostModelRegistry::Contains(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  return backends_.count(name) > 0;
}

StatusOr<CostBackendCapabilities> CostModelRegistry::Capabilities(
    const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = backends_.find(name);
  if (it == backends_.end()) {
    return NotFoundError("cost model '" + name + "' not registered");
  }
  return it->second.capabilities;
}

std::vector<std::string> CostModelRegistry::Names() const {
  std::vector<std::string> names;
  {
    std::lock_guard<std::mutex> lock(mu_);
    names.reserve(backends_.size());
    for (const auto& [name, entry] : backends_) names.push_back(name);
  }
  return names;  // std::map iterates sorted
}

StatusOr<std::shared_ptr<const CostCoefficients>> CostModelRegistry::Build(
    std::shared_ptr<const Instance> instance, const CostParams& params,
    const CostModelSpec& spec) const {
  if (instance == nullptr) {
    return InvalidArgumentError("cost model needs an instance");
  }
  CostModelFactory factory;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = backends_.find(spec.backend);
    if (it != backends_.end()) factory = it->second.factory;
  }
  if (factory == nullptr) {
    return NotFoundError("unknown cost model '" + spec.backend +
                         "' (available: " + JoinStrings(Names(), ", ") + ")");
  }
  StatusOr<std::shared_ptr<const CostCoefficients>> built =
      factory(std::move(instance), params, spec);
  VPART_RETURN_IF_ERROR(built.status());
  if (*built == nullptr) {
    return InternalError("factory for cost model '" + spec.backend +
                         "' returned null");
  }
  return built;
}

}  // namespace vpart
