#include "cost/partitioning.h"

#include "util/string_util.h"

namespace vpart {

Partitioning::Partitioning(int num_transactions, int num_attributes,
                           int num_sites)
    : num_transactions_(num_transactions),
      num_attributes_(num_attributes),
      num_sites_(num_sites),
      x_(num_transactions, -1),
      y_(static_cast<size_t>(num_attributes) * num_sites, 0) {}

int Partitioning::ReplicaCount(int a) const {
  int count = 0;
  for (int s = 0; s < num_sites_; ++s) count += y_[Idx(a, s)];
  return count;
}

std::vector<int> Partitioning::SitesOfAttribute(int a) const {
  std::vector<int> sites;
  for (int s = 0; s < num_sites_; ++s) {
    if (y_[Idx(a, s)]) sites.push_back(s);
  }
  return sites;
}

std::vector<int> Partitioning::TransactionsOnSite(int s) const {
  std::vector<int> txns;
  for (int t = 0; t < num_transactions_; ++t) {
    if (x_[t] == s) txns.push_back(t);
  }
  return txns;
}

std::vector<int> Partitioning::AttributesOnSite(int s) const {
  std::vector<int> attrs;
  for (int a = 0; a < num_attributes_; ++a) {
    if (y_[Idx(a, s)]) attrs.push_back(a);
  }
  return attrs;
}

Status ValidatePartitioning(const Instance& instance,
                            const Partitioning& partitioning,
                            bool require_disjoint) {
  if (partitioning.num_transactions() != instance.num_transactions() ||
      partitioning.num_attributes() != instance.num_attributes()) {
    return InvalidArgumentError("partitioning dimensions do not match instance");
  }
  if (partitioning.num_sites() <= 0) {
    return InvalidArgumentError("partitioning must have at least one site");
  }
  for (int t = 0; t < instance.num_transactions(); ++t) {
    const int s = partitioning.SiteOfTransaction(t);
    if (s < 0 || s >= partitioning.num_sites()) {
      return InfeasibleError(StrFormat(
          "transaction %d is not assigned to a site in range (got %d)", t, s));
    }
  }
  for (int a = 0; a < instance.num_attributes(); ++a) {
    const int replicas = partitioning.ReplicaCount(a);
    if (replicas < 1) {
      return InfeasibleError(StrFormat(
          "attribute %s is not placed on any site",
          instance.schema().QualifiedName(a).c_str()));
    }
    if (require_disjoint && replicas != 1) {
      return InfeasibleError(StrFormat(
          "attribute %s has %d replicas but disjointness is required",
          instance.schema().QualifiedName(a).c_str(), replicas));
    }
  }
  for (int t = 0; t < instance.num_transactions(); ++t) {
    const int s = partitioning.SiteOfTransaction(t);
    for (int a : instance.ReadSetOfTransaction(t)) {
      if (!partitioning.HasAttribute(a, s)) {
        return InfeasibleError(StrFormat(
            "single-sitedness violated: transaction %s reads %s which is "
            "missing on its site %d",
            instance.workload().transaction(t).name.c_str(),
            instance.schema().QualifiedName(a).c_str(), s));
      }
    }
  }
  return Status::Ok();
}

Partitioning SingleSiteBaseline(const Instance& instance, int num_sites) {
  Partitioning partitioning(instance.num_transactions(),
                            instance.num_attributes(), num_sites);
  for (int t = 0; t < instance.num_transactions(); ++t) {
    partitioning.AssignTransaction(t, 0);
  }
  for (int a = 0; a < instance.num_attributes(); ++a) {
    partitioning.PlaceAttribute(a, 0);
  }
  return partitioning;
}

}  // namespace vpart
