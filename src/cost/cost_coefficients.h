#ifndef VPART_COST_COST_COEFFICIENTS_H_
#define VPART_COST_COST_COEFFICIENTS_H_

#include <memory>
#include <string>
#include <vector>

#include "cost/partitioning.h"
#include "workload/instance.h"

namespace vpart {

/// Family-wide tunables shared by every cost-model backend (§2, §5).
struct CostParams {
  /// Network penalty factor p: bytes transferred between sites cost p times
  /// a local storage-layer byte. The paper estimates p ∈ [3, 128] and uses
  /// p = 8 (10-gigabit network). p = 0 simulates local partition placement
  /// (Table 6).
  double p = 8.0;

  /// Load-balancing weight λ ∈ [0, 1]: minimize (1−λ)·cost + λ·max-load.
  /// λ = 0 disables load balancing entirely. The paper's experiments use
  /// λ = 0.1 ("we mainly focus on minimizing the total costs and therefore
  /// set λ low"; "the model will choose the more load balanced layout if
  /// there is a cost draw"). Note: the paper's printed eq. (6) swaps the
  /// two weights, contradicting that §5 text and its own results; we follow
  /// the text (see DESIGN.md's typo list).
  double lambda = 0.1;
};

/// Objective (4) split into its physical components.
struct CostBreakdown {
  double read_access = 0.0;   // A_R: storage-layer units read
  double write_access = 0.0;  // A_W: storage-layer units written
  double transfer = 0.0;      // B: units shipped between sites (unweighted)
  /// Appendix-A latency term; nonzero only for latency-decorated models.
  double latency = 0.0;
  /// A_R + A_W + p·B + latency = Objective().
  double total = 0.0;
};

/// Non-owning instance handle for scoped call sites (stack instances in
/// tests, benches, and synchronous solves): an aliasing shared_ptr whose
/// control block owns nothing. The caller must keep `instance` alive for
/// the handle's lifetime — anything crossing a thread or session boundary
/// should hold a genuinely owning std::shared_ptr<const Instance> instead.
std::shared_ptr<const Instance> BorrowInstance(const Instance& instance);

/// The cost-model contract every solver consumes: precomputed objective
/// coefficients c1..c4 in the shape of the paper's eq. (4)/(5) plus the
/// evaluation surface (Objective/Breakdown/SiteLoad and the marginal
/// helpers the heuristics use). Backends differ only in the *physics*
/// behind the coefficients — how many storage-layer units query q pays per
/// touched attribute a, and how many units a remote replica costs on the
/// wire — which they supply through the AccessWeight/TransferWeight hooks;
/// the coefficient assembly and the default evaluation are shared, so a
/// backend is typically a constructor plus two small overrides (see
/// cost/cost_model.h for the paper backend and cost/cost_backends.h for
/// the hardware-scenario ones).
///
/// The hot-path accessors c1..c4 are non-virtual reads of the precomputed
/// tables, so handing a solver the interface instead of a concrete class
/// costs nothing in the SA/B&B inner loops. The instance is held by
/// std::shared_ptr<const Instance>, so a model (and every solver borrowing
/// it) keeps its instance alive across session and portfolio threads.
class CostCoefficients {
 public:
  virtual ~CostCoefficients() = default;

  const Instance& instance() const { return *instance_; }
  const std::shared_ptr<const Instance>& shared_instance() const {
    return instance_;
  }
  const CostParams& params() const { return params_; }
  /// Registry name of the backend that produced these coefficients
  /// ("paper", "cacheline", ...; decorators append a "+tag").
  const std::string& backend() const { return backend_; }

  /// c1(a,t) = Σ_q W·γ·(β(1−δ) − p·α·δ): per-(attribute, transaction)
  /// objective coefficient of x_{t,s}·y_{a,s}.
  double c1(int a, int t) const { return c1_[IdxTA(t, a)]; }
  /// c2(a) = Σ_q W·δ·(β + p·α): per-attribute coefficient of y_{a,s}.
  double c2(int a) const { return c2_[a]; }
  /// c3(a,t) = Σ_q W·γ·β·(1−δ): read-load coefficient (eq. 5).
  double c3(int a, int t) const { return c3_[IdxTA(t, a)]; }
  /// c4(a) = Σ_q W·β·δ: write-load coefficient (eq. 5).
  double c4(int a) const { return c4_[a]; }

  /// Objective (4): Σ c1·x·y + Σ c2·y — the "actual cost" the paper reports
  /// in every table. Requires all transactions assigned.
  virtual double Objective(const Partitioning& partitioning) const;

  /// Objective (4) recomputed from first principles (A_R + A_W + p·B);
  /// `total` must equal Objective() up to rounding — unit tested for every
  /// registered backend.
  virtual CostBreakdown Breakdown(const Partitioning& partitioning) const;

  /// Eq. (5): work of site s.
  virtual double SiteLoad(const Partitioning& partitioning, int s) const;

  /// max_s SiteLoad(s) — the m of the load-balanced model.
  double MaxLoad(const Partitioning& partitioning) const;

  /// Eq. (6) as intended: (1−λ)·Objective + λ·MaxLoad. This is what the
  /// solvers minimize; Objective() is what gets reported.
  virtual double ScalarizedObjective(const Partitioning& partitioning) const;

  /// Σ_a c1(a,t)·y[a][s]: cost contribution of placing transaction t on s
  /// given the attribute placement in `partitioning`. Used by the SA solver
  /// and the exhaustive enumerator.
  virtual double TransactionOnSiteCost(const Partitioning& partitioning,
                                       int t, int s) const;

  /// Objective-(4) delta coefficient of adding a replica of attribute a on
  /// site s: c2(a) + Σ_{t on s} c1(a,t). Negative values mean replication
  /// pays for itself (transfer saved exceeds write amplification).
  virtual double AttributeOnSiteCost(const Partitioning& partitioning, int a,
                                     int s) const;

  /// Units shipped per remote replica when write query q updates its
  /// referenced attribute a — the α-side physics. Only the cold paths use
  /// it (Breakdown's transfer component; the hot coefficients are
  /// precomputed), so it is virtual: backends override it consistently
  /// with the transfer functor they precompute with, and decorators
  /// delegate to their base. The default is the paper's W_{a,q}.
  virtual double TransferWeight(int a, int q) const {
    return instance_->W(a, q);
  }

  /// Rebuilds these coefficients (same backend, same knobs) for another
  /// instance — the incremental solver's growing prefix instances and the
  /// batch advisor's per-table subinstances carve sub-problems out of the
  /// original and need the same physics priced on them.
  virtual std::unique_ptr<CostCoefficients> Rebind(
      std::shared_ptr<const Instance> instance) const = 0;

 protected:
  /// Subclass constructors must call Precompute(...) once their weight
  /// state is ready.
  CostCoefficients(std::shared_ptr<const Instance> instance,
                   CostParams params, std::string backend);

  /// Decorator support: copy the wrapped model's tables (sharing its
  /// instance) under a derived name without re-running Precompute().
  CostCoefficients(const CostCoefficients& other, std::string backend);

  /// Assembles c1..c4 from two weight functors, which inline into the
  /// shared loop, so the pluggable path costs the same as the historical
  /// hand-written constructor (pinned <2% by bench_parallel
  /// --cost-model):
  ///
  ///   access(a, q)   storage-layer units query q pays for attribute a
  ///                  (the β side; a ranges over all attributes of tables
  ///                  q accesses),
  ///   transfer(a, q) units shipped per remote replica when write query q
  ///                  updates attribute a (the α side).
  ///
  /// noinline is load-bearing: inlined into a constructor, the loop
  /// shares register allocation with the ctor's string/shared_ptr/EH
  /// state and GCC spills the hot index values (~15% slower); in its own
  /// frame the codegen matches the pre-interface constructor.
  ///
  /// The float operations and their order match the original concrete
  /// CostModel exactly, so a backend whose functors return the paper's
  /// W_{a,q} produces bit-for-bit identical coefficients.
  template <typename AccessFn, typename TransferFn>
#if defined(__GNUC__)
  __attribute__((noinline))
#endif
  void Precompute(AccessFn access, TransferFn transfer) {
    const int num_a = instance_->num_attributes();
    const int num_t = instance_->num_transactions();
    c1_.assign(static_cast<size_t>(num_t) * num_a, 0.0);
    c2_.assign(num_a, 0.0);
    c3_.assign(static_cast<size_t>(num_t) * num_a, 0.0);
    c4_.assign(num_a, 0.0);

    // Member-style accesses on purpose: everything rematerializes from
    // `this`, which keeps register pressure low — hoisting the table
    // pointers into locals makes GCC spill them to the stack in the
    // inner loop and costs ~15% (bench_parallel --cost-model pins this
    // loop within 2% of the pre-interface constructor it replaced).
    const Workload& workload = instance_->workload();
    for (int q = 0; q < instance_->num_queries(); ++q) {
      const Query& query = workload.query(q);
      // The c1/c3 row of this query's transaction (t is fixed per q, so
      // the IdxTA multiply hoists out of the attribute loops).
      const size_t row =
          static_cast<size_t>(query.transaction_id) * num_a;
      const double delta = query.is_write() ? 1.0 : 0.0;
      // β support of q: all attributes of accessed tables.
      for (const auto& [tbl, rows] : query.table_rows) {
        (void)rows;
        for (int a : instance_->schema().table(tbl).attribute_ids) {
          const double w = access(a, q);
          c1_[row + a] += w * (1.0 - delta);  // β(1−δ) part
          c2_[a] += w * delta;                // β·δ part
          c3_[row + a] += w * (1.0 - delta);
          c4_[a] += w * delta;
        }
      }
      // α support of q (referenced attributes): the transfer terms.
      if (query.is_write()) {
        for (int a : query.attributes) {
          const double w = transfer(a, q);
          c1_[row + a] -= params_.p * w;  // −p·α·δ part
          c2_[a] += params_.p * w;        // +p·α·δ part
        }
      }
    }
  }

  /// Precompute with the paper's physics: W_{a,q} = w_a·f_q·n_{r,q} bytes
  /// on both the access and the transfer side. The functor reads through
  /// the same `instance_` member the assembly loop uses — a separately
  /// captured pointer would be a second pointer chain the compiler cannot
  /// prove equal, costing registers and common-subexpression reuse.
  void Precompute() {
    const auto paper_w = [this](int a, int q) { return instance_->W(a, q); };
    Precompute(paper_w, paper_w);
  }

  size_t IdxTA(int t, int a) const {
    return static_cast<size_t>(t) * instance_->num_attributes() + a;
  }

 private:
  std::shared_ptr<const Instance> instance_;
  CostParams params_;
  std::string backend_;
  std::vector<double> c1_;  // |T| x |A|
  std::vector<double> c2_;  // |A|
  std::vector<double> c3_;  // |T| x |A|
  std::vector<double> c4_;  // |A|
};

}  // namespace vpart

#endif  // VPART_COST_COST_COEFFICIENTS_H_
