#ifndef VPART_COST_COST_MODEL_REGISTRY_H_
#define VPART_COST_COST_MODEL_REGISTRY_H_

#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "cost/cost_coefficients.h"
#include "cost/cost_model_spec.h"
#include "util/status.h"

namespace vpart {

/// What a registered cost-model backend can express; the advise
/// orchestrator queries these to reject solver/model mismatches up front
/// instead of producing silently-wrong numbers.
struct CostBackendCapabilities {
  /// The transfer term prices bytes shipped between networked sites. The
  /// Appendix-A latency decorator (AdviseRequest::latency_penalty) models
  /// network round trips and only composes with such backends — requesting
  /// it against e.g. the local-disk backend is an InvalidArgument.
  bool network_transfer = true;
  /// Weights are additive in attribute width, so the §4 attribute
  /// grouping (which merges identically-accessed attributes by summing
  /// widths) preserves the objective exactly. Backends with line/page
  /// rounding are not additive; the advise orchestrator skips grouping
  /// for them (with a warning) instead of optimizing a distorted
  /// objective.
  bool additive_widths = true;
  /// One-line scenario summary for --help and error messages.
  std::string description;
};

/// Backend factory: builds coefficients for one instance under the
/// family-wide params (p, λ) and the backend's block of `spec`. Factories
/// must validate their block and may fail with InvalidArgument.
using CostModelFactory =
    std::function<StatusOr<std::shared_ptr<const CostCoefficients>>(
        std::shared_ptr<const Instance> instance, const CostParams& params,
        const CostModelSpec& spec)>;

/// Name -> (capabilities, factory) registry behind the pluggable cost-model
/// API, mirroring SolverRegistry: the global instance self-registers the
/// built-in backends (paper, cacheline, disk_page) on first use; embedders
/// may add their own physics, which requests then select by name. All
/// methods are thread-safe.
class CostModelRegistry {
 public:
  /// The process-wide registry (built-ins pre-registered).
  static CostModelRegistry& Global();

  /// Registers a backend; fails with kAlreadyExists on a duplicate name.
  Status Register(const std::string& name,
                  CostBackendCapabilities capabilities,
                  CostModelFactory factory);

  /// Removes a registered backend (primarily for tests).
  Status Unregister(const std::string& name);

  bool Contains(const std::string& name) const;
  StatusOr<CostBackendCapabilities> Capabilities(
      const std::string& name) const;

  /// Registered names, sorted.
  std::vector<std::string> Names() const;

  /// Resolves spec.backend and builds the coefficients. Unknown names fail
  /// with kNotFound listing the registered backends (consistent with the
  /// solver registry's errors).
  StatusOr<std::shared_ptr<const CostCoefficients>> Build(
      std::shared_ptr<const Instance> instance, const CostParams& params,
      const CostModelSpec& spec) const;

 private:
  struct Entry {
    CostBackendCapabilities capabilities;
    CostModelFactory factory;
  };

  mutable std::mutex mu_;
  std::map<std::string, Entry> backends_;
};

}  // namespace vpart

#endif  // VPART_COST_COST_MODEL_REGISTRY_H_
