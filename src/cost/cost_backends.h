#ifndef VPART_COST_COST_BACKENDS_H_
#define VPART_COST_COST_BACKENDS_H_

#include <memory>

#include "cost/cost_coefficients.h"
#include "cost/cost_model_spec.h"

namespace vpart {

/// "cacheline" backend: cache-line-granular main-memory storage layer with
/// per-row framing and read/write asymmetry (see CachelineCostOptions).
/// Access physics per (attribute a, query q):
///
///   access(a,q)  = factor(q) · f_q · n_{r,q} ·
///                  ceil((row_header + w_a)/line) · line
///   transfer(a,q) = f_q · n_{r,q} · (w_a + transfer_header)
///
/// where factor is read_factor or write_factor. Narrow attributes round up
/// to whole lines, so this backend — unlike the paper's — rewards packing
/// hot narrow columns together and penalizes replicating wide ones more
/// steeply on the write side.
class CachelineCostModel final : public CostCoefficients {
 public:
  CachelineCostModel(std::shared_ptr<const Instance> instance,
                     CostParams params, CachelineCostOptions options);

  const CachelineCostOptions& options() const { return options_; }

  double TransferWeight(int a, int q) const override;

  std::unique_ptr<CostCoefficients> Rebind(
      std::shared_ptr<const Instance> instance) const override;

 private:
  double AccessWeight(int a, int q) const;

  CachelineCostOptions options_;
};

/// "disk_page" backend: Navathe-style block-access model for a row store on
/// disk (see DiskPageCostOptions). Access physics per (attribute, query):
///
///   access(a,q)  = factor(q) · f_q · (seek_pages + ceil(n·w_a/page)) · page
///   transfer(a,q) = f_q · n_{r,q} · w_a            (raw bytes)
///
/// The per-access seek makes every extra fragment a query must touch
/// expensive regardless of width — the classic disk-era pressure toward few
/// wide fragments, opposite to what fast networks reward.
class DiskPageCostModel final : public CostCoefficients {
 public:
  DiskPageCostModel(std::shared_ptr<const Instance> instance,
                    CostParams params, DiskPageCostOptions options);

  const DiskPageCostOptions& options() const { return options_; }

  double TransferWeight(int a, int q) const override;

  std::unique_ptr<CostCoefficients> Rebind(
      std::shared_ptr<const Instance> instance) const override;

 private:
  double AccessWeight(int a, int q) const;

  DiskPageCostOptions options_;
};

}  // namespace vpart

#endif  // VPART_COST_COST_BACKENDS_H_
