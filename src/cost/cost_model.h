#ifndef VPART_COST_COST_MODEL_H_
#define VPART_COST_COST_MODEL_H_

#include <vector>

#include "cost/partitioning.h"
#include "workload/instance.h"

namespace vpart {

/// Tunables of the paper's cost model (§2, §5).
struct CostParams {
  /// Network penalty factor p: bytes transferred between sites cost p times
  /// a local storage-layer byte. The paper estimates p ∈ [3, 128] and uses
  /// p = 8 (10-gigabit network). p = 0 simulates local partition placement
  /// (Table 6).
  double p = 8.0;

  /// Load-balancing weight λ ∈ [0, 1]: minimize (1−λ)·cost + λ·max-load.
  /// λ = 0 disables load balancing entirely. The paper's experiments use
  /// λ = 0.1 ("we mainly focus on minimizing the total costs and therefore
  /// set λ low"; "the model will choose the more load balanced layout if
  /// there is a cost draw"). Note: the paper's printed eq. (6) swaps the
  /// two weights, contradicting that §5 text and its own results; we follow
  /// the text (see DESIGN.md's typo list).
  double lambda = 0.1;
};

/// Objective (4) split into its physical components.
struct CostBreakdown {
  double read_access = 0.0;   // A_R: storage-layer bytes read
  double write_access = 0.0;  // A_W: storage-layer bytes written
  double transfer = 0.0;      // B: bytes shipped between sites (unweighted)
  /// A_R + A_W + p·B = objective (4).
  double total = 0.0;
};

/// Precomputed cost coefficients c1..c4 of the paper plus evaluation of
/// objectives (4), (5) and (6) for concrete partitionings. Immutable after
/// construction; the referenced Instance must outlive the model.
class CostModel {
 public:
  CostModel(const Instance* instance, CostParams params);

  const Instance& instance() const { return *instance_; }
  const CostParams& params() const { return params_; }

  /// c1(a,t) = Σ_q W·γ·(β(1−δ) − p·α·δ): per-(attribute, transaction)
  /// objective coefficient of x_{t,s}·y_{a,s}.
  double c1(int a, int t) const { return c1_[IdxTA(t, a)]; }
  /// c2(a) = Σ_q W·δ·(β + p·α): per-attribute coefficient of y_{a,s}.
  double c2(int a) const { return c2_[a]; }
  /// c3(a,t) = Σ_q W·γ·β·(1−δ): read-load coefficient (eq. 5).
  double c3(int a, int t) const { return c3_[IdxTA(t, a)]; }
  /// c4(a) = Σ_q W·β·δ: write-load coefficient (eq. 5).
  double c4(int a) const { return c4_[a]; }

  /// Objective (4): Σ c1·x·y + Σ c2·y — the "actual cost" the paper reports
  /// in every table. Requires all transactions assigned.
  double Objective(const Partitioning& partitioning) const;

  /// Objective (4) recomputed from first principles (A_R + A_W + p·B);
  /// `total` must equal Objective() up to rounding — unit tested.
  CostBreakdown Breakdown(const Partitioning& partitioning) const;

  /// Eq. (5): work of site s.
  double SiteLoad(const Partitioning& partitioning, int s) const;

  /// max_s SiteLoad(s) — the m of the load-balanced model.
  double MaxLoad(const Partitioning& partitioning) const;

  /// Eq. (6) as intended: (1−λ)·Objective + λ·MaxLoad. This is what the
  /// solvers minimize; Objective() is what gets reported.
  double ScalarizedObjective(const Partitioning& partitioning) const;

  /// Σ_a c1(a,t)·y[a][s]: cost contribution of placing transaction t on s
  /// given the attribute placement in `partitioning`. Used by the SA solver
  /// and the exhaustive enumerator.
  double TransactionOnSiteCost(const Partitioning& partitioning, int t,
                               int s) const;

  /// Objective-(4) delta coefficient of adding a replica of attribute a on
  /// site s: c2(a) + Σ_{t on s} c1(a,t). Negative values mean replication
  /// pays for itself (transfer saved exceeds write amplification).
  double AttributeOnSiteCost(const Partitioning& partitioning, int a,
                             int s) const;

 private:
  size_t IdxTA(int t, int a) const {
    return static_cast<size_t>(t) * instance_->num_attributes() + a;
  }

  const Instance* instance_;
  CostParams params_;
  std::vector<double> c1_;  // |T| x |A|
  std::vector<double> c2_;  // |A|
  std::vector<double> c3_;  // |T| x |A|
  std::vector<double> c4_;  // |A|
};

}  // namespace vpart

#endif  // VPART_COST_COST_MODEL_H_
