#ifndef VPART_COST_COST_MODEL_H_
#define VPART_COST_COST_MODEL_H_

#include <memory>

#include "cost/cost_coefficients.h"
#include "cost/partitioning.h"
#include "workload/instance.h"

namespace vpart {

/// The paper's cost model (§2, §5) — the "paper" backend of the cost-model
/// registry and the historical concrete class: a main-memory storage layer
/// where reading or writing attribute a for query q costs W_{a,q} =
/// w_a·f_q·n_{r,q} bytes and every remote replica of a written attribute
/// ships the same W_{a,q} bytes, weighted p, over the network. The
/// coefficient assembly and evaluation live in CostCoefficients; this class
/// only pins the physics (the base AccessWeight/TransferWeight defaults ARE
/// the paper's weights).
class CostModel final : public CostCoefficients {
 public:
  /// Owning handle: the model shares `instance`, so solver/session/portfolio
  /// threads holding the model keep the instance alive.
  CostModel(std::shared_ptr<const Instance> instance, CostParams params);

  /// Borrowing convenience for scoped call sites (stack instances in tests
  /// and benches): the caller must keep `instance` alive; anything that
  /// crosses a thread boundary should use the shared_ptr constructor.
  CostModel(const Instance* instance, CostParams params);

  std::unique_ptr<CostCoefficients> Rebind(
      std::shared_ptr<const Instance> instance) const override;
};

}  // namespace vpart

#endif  // VPART_COST_COST_MODEL_H_
