#include "cost/partitioning_io.h"

#include <fstream>
#include <sstream>
#include <vector>

#include "util/string_util.h"

namespace vpart {

std::string WritePartitioningText(const Instance& instance,
                                  const Partitioning& partitioning) {
  std::ostringstream out;
  out << "# vpart partitioning for instance " << instance.name() << "\n";
  out << "partitioning " << partitioning.num_sites() << "\n";
  for (int t = 0; t < partitioning.num_transactions(); ++t) {
    out << "txn " << instance.workload().transaction(t).name << " "
        << partitioning.SiteOfTransaction(t) << "\n";
  }
  for (int a = 0; a < partitioning.num_attributes(); ++a) {
    out << "attr " << instance.schema().QualifiedName(a);
    for (int s : partitioning.SitesOfAttribute(a)) out << " " << s;
    out << "\n";
  }
  return out.str();
}

StatusOr<Partitioning> ParsePartitioningText(const Instance& instance,
                                             const std::string& text) {
  Partitioning partitioning;
  bool started = false;
  std::vector<bool> txn_seen(instance.num_transactions(), false);

  std::istringstream in(text);
  std::string line;
  int line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    std::string_view stripped = StripWhitespace(line);
    if (stripped.empty() || stripped[0] == '#') continue;
    std::vector<std::string> tok = SplitWhitespace(stripped);
    auto fail = [&](const std::string& message) {
      return InvalidArgumentError(
          StrFormat("line %d: %s", line_no, message.c_str()));
    };

    if (tok[0] == "partitioning") {
      int sites = 0;
      if (tok.size() != 2 || !ParseInt(tok[1], &sites) || sites < 1) {
        return fail("expected: partitioning <num_sites>");
      }
      partitioning = Partitioning(instance.num_transactions(),
                                  instance.num_attributes(), sites);
      started = true;
    } else if (!started) {
      return fail("file must start with a 'partitioning' line");
    } else if (tok[0] == "txn") {
      if (tok.size() != 3) return fail("expected: txn <name> <site>");
      auto t = instance.workload().FindTransaction(tok[1]);
      if (!t.ok()) return fail(t.status().message());
      int site = 0;
      if (!ParseInt(tok[2], &site) || site < 0 ||
          site >= partitioning.num_sites()) {
        return fail("site out of range: " + tok[2]);
      }
      if (txn_seen[t.value()]) return fail("duplicate txn: " + tok[1]);
      txn_seen[t.value()] = true;
      partitioning.AssignTransaction(t.value(), site);
    } else if (tok[0] == "attr") {
      if (tok.size() < 3) return fail("expected: attr <name> <site>...");
      auto a = instance.schema().FindAttribute(tok[1]);
      if (!a.ok()) return fail(a.status().message());
      for (size_t i = 2; i < tok.size(); ++i) {
        int site = 0;
        if (!ParseInt(tok[i], &site) || site < 0 ||
            site >= partitioning.num_sites()) {
          return fail("site out of range: " + tok[i]);
        }
        partitioning.PlaceAttribute(a.value(), site);
      }
    } else {
      return fail("unknown directive: " + tok[0]);
    }
  }

  if (!started) return InvalidArgumentError("no 'partitioning' line found");
  for (int t = 0; t < instance.num_transactions(); ++t) {
    if (!txn_seen[t]) {
      return InvalidArgumentError(
          "transaction missing from file: " +
          instance.workload().transaction(t).name);
    }
  }
  for (int a = 0; a < instance.num_attributes(); ++a) {
    if (partitioning.ReplicaCount(a) == 0) {
      return InvalidArgumentError("attribute missing from file: " +
                                  instance.schema().QualifiedName(a));
    }
  }
  return partitioning;
}

Status WritePartitioningFile(const Instance& instance,
                             const Partitioning& partitioning,
                             const std::string& path) {
  std::ofstream out(path);
  if (!out) return InternalError("cannot open for writing: " + path);
  out << WritePartitioningText(instance, partitioning);
  if (!out) return InternalError("write failed: " + path);
  return Status::Ok();
}

StatusOr<Partitioning> ReadPartitioningFile(const Instance& instance,
                                            const std::string& path) {
  std::ifstream in(path);
  if (!in) return NotFoundError("cannot open: " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return ParsePartitioningText(instance, buffer.str());
}

}  // namespace vpart
