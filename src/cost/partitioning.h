#ifndef VPART_COST_PARTITIONING_H_
#define VPART_COST_PARTITIONING_H_

#include <cstdint>
#include <vector>

#include "util/status.h"
#include "workload/instance.h"

namespace vpart {

/// A candidate solution: a disjoint assignment of transactions to sites
/// (the paper's x_{t,s}) and a possibly replicated placement of attributes
/// (y_{a,s}). Plain data with O(1) accessors; cost evaluation lives in
/// CostModel, feasibility checking in ValidatePartitioning.
class Partitioning {
 public:
  Partitioning() = default;
  Partitioning(int num_transactions, int num_attributes, int num_sites);

  int num_transactions() const { return num_transactions_; }
  int num_attributes() const { return num_attributes_; }
  int num_sites() const { return num_sites_; }

  /// x accessors. A transaction not yet assigned reports site -1.
  int SiteOfTransaction(int t) const { return x_[t]; }
  void AssignTransaction(int t, int s) { x_[t] = s; }

  /// y accessors.
  bool HasAttribute(int a, int s) const { return y_[Idx(a, s)] != 0; }
  void PlaceAttribute(int a, int s) { y_[Idx(a, s)] = 1; }
  void RemoveAttribute(int a, int s) { y_[Idx(a, s)] = 0; }
  void ClearAttribute(int a) {
    for (int s = 0; s < num_sites_; ++s) y_[Idx(a, s)] = 0;
  }

  /// Number of replicas of attribute a (Σ_s y_{a,s}).
  int ReplicaCount(int a) const;

  /// Sites hosting attribute a, ascending.
  std::vector<int> SitesOfAttribute(int a) const;

  /// Transactions assigned to site s, ascending.
  std::vector<int> TransactionsOnSite(int s) const;

  /// Attributes present on site s, ascending.
  std::vector<int> AttributesOnSite(int s) const;

  friend bool operator==(const Partitioning& a, const Partitioning& b) {
    return a.num_sites_ == b.num_sites_ && a.x_ == b.x_ && a.y_ == b.y_;
  }

 private:
  size_t Idx(int a, int s) const {
    return static_cast<size_t>(a) * num_sites_ + s;
  }

  int num_transactions_ = 0;
  int num_attributes_ = 0;
  int num_sites_ = 0;
  std::vector<int> x_;       // transaction -> site (-1 = unassigned)
  std::vector<uint8_t> y_;   // (attribute, site) -> present
};

/// Checks the paper's feasibility conditions:
///  * every transaction is assigned to exactly one site in range,
///  * every attribute is placed on at least one site,
///  * single-sitedness of reads: φ_{a,t} = 1 implies y[a][x_t] = 1,
///  * if `require_disjoint`, every attribute has exactly one replica.
Status ValidatePartitioning(const Instance& instance,
                            const Partitioning& partitioning,
                            bool require_disjoint = false);

/// The trivial baseline used throughout the paper's tables as "|S| = 1":
/// everything on one site (site 0 of `num_sites`).
Partitioning SingleSiteBaseline(const Instance& instance, int num_sites = 1);

}  // namespace vpart

#endif  // VPART_COST_PARTITIONING_H_
