#ifndef VPART_COST_LATENCY_DECORATOR_H_
#define VPART_COST_LATENCY_DECORATOR_H_

#include <memory>
#include <vector>

#include "cost/cost_coefficients.h"

namespace vpart {

/// Appendix A: network-latency extension. A write query q pays one latency
/// penalty p_l·f_q when it touches any remotely placed replica (remote
/// requests are assumed to go out in parallel, so the count per query is
/// 0/1 — the paper's ψ_q indicator). Reads never pay: single-sitedness
/// keeps them local.
///
/// ψ_q for a concrete partitioning: 1 iff q is a write and some referenced
/// attribute has a replica on a site other than the query's home site.
std::vector<uint8_t> ComputePsi(const Instance& instance,
                                const Partitioning& partitioning);

/// Total latency term p_l · Σ_q f_q·ψ_q.
double LatencyCost(const Instance& instance, const Partitioning& partitioning,
                   double latency_penalty);

/// Composable latency decorator: wraps any cost-model backend and adds the
/// Appendix-A per-query latency term to its evaluation surface —
///
///   Objective()            = base Objective + p_l·Σ f_q·ψ_q
///   Breakdown().latency    = p_l·Σ f_q·ψ_q   (included in .total)
///   ScalarizedObjective()  = base Scalarized + p_l·Σ f_q·ψ_q
///
/// (the latency term joins the scalarization unscaled, matching the ψ
/// objective coefficients AddLatencyToFormulation emits into the ILP).
/// The c1..c4 tables are copied from the base (construction costs about
/// one Objective() evaluation — decorate once per request/solve, not per
/// evaluation), so coefficient-driven marginals (TransactionOnSiteCost,
/// AttributeOnSiteCost) and SiteLoad stay latency-blind — the ψ
/// indicator is not linear in (x, y), which is
/// exactly why the ILP prices it via dedicated binaries while the
/// heuristics optimize the base objective and report their exposure.
/// Evaluation-driven solvers (the exhaustive enumerator ranks candidates
/// by ScalarizedObjective) become latency-exact simply by being handed a
/// decorated model.
///
/// The decorator composes with any backend whose transfer term models a
/// network (CostBackendCapabilities::network_transfer); the advise
/// orchestrator rejects the others up front.
class LatencyDecoratedCost final : public CostCoefficients {
 public:
  /// `base` must not be null; the decorator shares its instance, keeps
  /// `base` alive, and copies its coefficient tables.
  LatencyDecoratedCost(std::shared_ptr<const CostCoefficients> base,
                       double latency_penalty);

  const CostCoefficients& base() const { return *base_; }
  double latency_penalty() const { return latency_penalty_; }

  /// p_l · Σ_q f_q·ψ_q for a concrete partitioning.
  double LatencyTerm(const Partitioning& partitioning) const;

  double Objective(const Partitioning& partitioning) const override;
  CostBreakdown Breakdown(const Partitioning& partitioning) const override;
  double ScalarizedObjective(const Partitioning& partitioning) const override;
  double TransferWeight(int a, int q) const override {
    return base_->TransferWeight(a, q);
  }

  std::unique_ptr<CostCoefficients> Rebind(
      std::shared_ptr<const Instance> instance) const override;

 private:
  std::shared_ptr<const CostCoefficients> base_;
  double latency_penalty_;
};

}  // namespace vpart

#endif  // VPART_COST_LATENCY_DECORATOR_H_
