#ifndef VPART_COST_PARTITIONING_IO_H_
#define VPART_COST_PARTITIONING_IO_H_

#include <string>

#include "cost/partitioning.h"
#include "workload/instance.h"

namespace vpart {

/// Serializes a partitioning against its instance's names:
///
///   partitioning <num_sites>
///   txn <transaction> <site>
///   attr <table>.<attribute> <site> [<site> ...]
///
/// Sites are 0-based. Lines starting with '#' and blank lines are ignored
/// by the parser. The format survives attribute reordering because
/// everything is name-keyed.
std::string WritePartitioningText(const Instance& instance,
                                  const Partitioning& partitioning);

/// Parses the format above and validates dimensions against `instance`
/// (every transaction assigned exactly once, every attribute placed at
/// least once, all sites in range). Feasibility (single-sitedness) is NOT
/// enforced here — use ValidatePartitioning for that.
StatusOr<Partitioning> ParsePartitioningText(const Instance& instance,
                                             const std::string& text);

Status WritePartitioningFile(const Instance& instance,
                             const Partitioning& partitioning,
                             const std::string& path);
StatusOr<Partitioning> ReadPartitioningFile(const Instance& instance,
                                            const std::string& path);

}  // namespace vpart

#endif  // VPART_COST_PARTITIONING_IO_H_
