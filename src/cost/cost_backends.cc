#include "cost/cost_backends.h"

#include <cmath>
#include <utility>

namespace vpart {
namespace {

/// Rows query q touches in attribute a's table, with q's frequency applied.
/// Returns 0 when the table is listed with no rows (COUNT(*)-style access
/// contributes no per-attribute bytes, matching the paper's W = 0 there).
double RowVolume(const Instance& instance, int a, int q, double* rows_out) {
  const Attribute& attribute = instance.schema().attribute(a);
  const Query& query = instance.workload().query(q);
  const double rows = query.RowsInTable(attribute.table_id);
  *rows_out = rows;
  return rows > 0.0 ? query.frequency : 0.0;
}

}  // namespace

// ---------------------------------------------------------------------------
// cacheline
// ---------------------------------------------------------------------------

CachelineCostModel::CachelineCostModel(
    std::shared_ptr<const Instance> instance, CostParams params,
    CachelineCostOptions options)
    : CostCoefficients(std::move(instance), params, kCostModelCacheline),
      options_(options) {
  Precompute([this](int a, int q) { return AccessWeight(a, q); },
             [this](int a, int q) { return TransferWeight(a, q); });
}

double CachelineCostModel::AccessWeight(int a, int q) const {
  double rows = 0.0;
  const double freq = RowVolume(instance(), a, q, &rows);
  if (freq == 0.0) return 0.0;
  const double width = instance().schema().attribute(a).width;
  const double lines =
      std::ceil((options_.row_header_bytes + width) / options_.line_bytes);
  const double factor = instance().workload().query(q).is_write()
                            ? options_.write_factor
                            : options_.read_factor;
  return factor * freq * rows * lines * options_.line_bytes;
}

double CachelineCostModel::TransferWeight(int a, int q) const {
  double rows = 0.0;
  const double freq = RowVolume(instance(), a, q, &rows);
  if (freq == 0.0) return 0.0;
  const double width = instance().schema().attribute(a).width;
  return freq * rows * (width + options_.transfer_header_bytes);
}

std::unique_ptr<CostCoefficients> CachelineCostModel::Rebind(
    std::shared_ptr<const Instance> instance) const {
  return std::make_unique<CachelineCostModel>(std::move(instance), params(),
                                              options_);
}

// ---------------------------------------------------------------------------
// disk_page
// ---------------------------------------------------------------------------

DiskPageCostModel::DiskPageCostModel(std::shared_ptr<const Instance> instance,
                                     CostParams params,
                                     DiskPageCostOptions options)
    : CostCoefficients(std::move(instance), params, kCostModelDiskPage),
      options_(options) {
  Precompute([this](int a, int q) { return AccessWeight(a, q); },
             [this](int a, int q) { return TransferWeight(a, q); });
}

double DiskPageCostModel::AccessWeight(int a, int q) const {
  double rows = 0.0;
  const double freq = RowVolume(instance(), a, q, &rows);
  if (freq == 0.0) return 0.0;
  const double width = instance().schema().attribute(a).width;
  const double pages = std::ceil(rows * width / options_.page_bytes);
  const double factor = instance().workload().query(q).is_write()
                            ? options_.write_factor
                            : 1.0;
  return factor * freq * (options_.seek_pages + pages) * options_.page_bytes;
}

double DiskPageCostModel::TransferWeight(int a, int q) const {
  double rows = 0.0;
  const double freq = RowVolume(instance(), a, q, &rows);
  if (freq == 0.0) return 0.0;
  return freq * rows * instance().schema().attribute(a).width;
}

std::unique_ptr<CostCoefficients> DiskPageCostModel::Rebind(
    std::shared_ptr<const Instance> instance) const {
  return std::make_unique<DiskPageCostModel>(std::move(instance), params(),
                                             options_);
}

}  // namespace vpart
