#include "cost/latency_decorator.h"

#include <cassert>
#include <utility>

namespace vpart {

std::vector<uint8_t> ComputePsi(const Instance& instance,
                                const Partitioning& partitioning) {
  std::vector<uint8_t> psi(instance.num_queries(), 0);
  for (int q = 0; q < instance.num_queries(); ++q) {
    const Query& query = instance.workload().query(q);
    if (!query.is_write()) continue;
    const int home = partitioning.SiteOfTransaction(query.transaction_id);
    for (int a : query.attributes) {
      const int replicas = partitioning.ReplicaCount(a);
      const int local = partitioning.HasAttribute(a, home) ? 1 : 0;
      if (replicas - local > 0) {
        psi[q] = 1;
        break;
      }
    }
  }
  return psi;
}

double LatencyCost(const Instance& instance, const Partitioning& partitioning,
                   double latency_penalty) {
  const std::vector<uint8_t> psi = ComputePsi(instance, partitioning);
  double total = 0.0;
  for (int q = 0; q < instance.num_queries(); ++q) {
    if (psi[q]) total += instance.workload().query(q).frequency;
  }
  return latency_penalty * total;
}

LatencyDecoratedCost::LatencyDecoratedCost(
    std::shared_ptr<const CostCoefficients> base, double latency_penalty)
    : CostCoefficients(*base, base->backend() + "+latency"),
      base_(std::move(base)),
      latency_penalty_(latency_penalty) {
  assert(base_ != nullptr);
}

double LatencyDecoratedCost::LatencyTerm(
    const Partitioning& partitioning) const {
  return LatencyCost(instance(), partitioning, latency_penalty_);
}

double LatencyDecoratedCost::Objective(
    const Partitioning& partitioning) const {
  return base_->Objective(partitioning) + LatencyTerm(partitioning);
}

CostBreakdown LatencyDecoratedCost::Breakdown(
    const Partitioning& partitioning) const {
  CostBreakdown breakdown = base_->Breakdown(partitioning);
  breakdown.latency = LatencyTerm(partitioning);
  breakdown.total += breakdown.latency;
  return breakdown;
}

double LatencyDecoratedCost::ScalarizedObjective(
    const Partitioning& partitioning) const {
  return base_->ScalarizedObjective(partitioning) +
         LatencyTerm(partitioning);
}

std::unique_ptr<CostCoefficients> LatencyDecoratedCost::Rebind(
    std::shared_ptr<const Instance> instance) const {
  std::shared_ptr<const CostCoefficients> rebound =
      base_->Rebind(std::move(instance));
  return std::make_unique<LatencyDecoratedCost>(std::move(rebound),
                                                latency_penalty_);
}

}  // namespace vpart
