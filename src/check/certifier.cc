#include "check/certifier.h"

#include <cmath>
#include <memory>
#include <utility>

#include "cost/cost_model_registry.h"
#include "cost/latency_decorator.h"
#include "util/string_util.h"

namespace vpart {
namespace {

/// One site's transactions, indexed once so the long-double objective loop
/// is O(|A|·|T|) overall instead of O(|S|·|A|·|T|).
std::vector<std::vector<int>> TransactionsBySite(const Partitioning& p) {
  std::vector<std::vector<int>> by_site(p.num_sites());
  for (int t = 0; t < p.num_transactions(); ++t) {
    const int s = p.SiteOfTransaction(t);
    if (s >= 0 && s < p.num_sites()) by_site[s].push_back(t);
  }
  return by_site;
}

/// Objective (4) re-accumulated in long double, site-major: for every
/// placed replica (a, s), c2(a) plus c1(a, t) for each transaction homed on
/// s. Deliberately a different summation order (and precision) than
/// CostCoefficients::Objective's transaction-major double loop.
long double RecomputeObjective(const CostCoefficients& model,
                               const Partitioning& p) {
  const std::vector<std::vector<int>> by_site = TransactionsBySite(p);
  long double total = 0.0L;
  for (int s = 0; s < p.num_sites(); ++s) {
    for (int a = 0; a < p.num_attributes(); ++a) {
      if (!p.HasAttribute(a, s)) continue;
      total += static_cast<long double>(model.c2(a));
      for (int t : by_site[s]) {
        total += static_cast<long double>(model.c1(a, t));
      }
    }
  }
  return total;
}

/// Eq. (5) site load in long double: read work of the transactions homed on
/// s over the attributes present there, plus the write work of every
/// replica on s.
long double RecomputeSiteLoad(const CostCoefficients& model,
                              const Partitioning& p,
                              const std::vector<int>& site_transactions,
                              int s) {
  long double load = 0.0L;
  for (int a = 0; a < p.num_attributes(); ++a) {
    if (!p.HasAttribute(a, s)) continue;
    load += static_cast<long double>(model.c4(a));
    for (int t : site_transactions) {
      load += static_cast<long double>(model.c3(a, t));
    }
  }
  return load;
}

}  // namespace

std::string CertificationReport::Summary() const {
  if (certified) {
    return StrFormat("certified (%ld checks)", checks_run);
  }
  std::string out = "REJECTED: ";
  for (size_t i = 0; i < failures.size(); ++i) {
    if (i > 0) out += "; ";
    out += failures[i];
  }
  return out;
}

SolutionCertifier::SolutionCertifier(CertifierOptions options)
    : options_(options) {}

CertificationReport SolutionCertifier::Certify(
    const Instance& instance, const AdviseRequest& request,
    const AdviseResponse& response) const {
  CertificationReport report;
  const Partitioning& p = response.result.partitioning;
  auto check = [&report](bool ok, std::string what) {
    ++report.checks_run;
    if (!ok) report.failures.push_back(std::move(what));
  };

  // --- shape -------------------------------------------------------------
  const bool shape_ok = p.num_transactions() == instance.num_transactions() &&
                        p.num_attributes() == instance.num_attributes() &&
                        p.num_sites() == request.num_sites;
  check(shape_ok,
        StrFormat("partitioning shape %dx%dx%d does not match instance "
                  "%dx%d over %d sites",
                  p.num_transactions(), p.num_attributes(), p.num_sites(),
                  instance.num_transactions(), instance.num_attributes(),
                  request.num_sites));
  if (!shape_ok) {
    // Every later check indexes through the shape; stop here.
    report.certified = false;
    return report;
  }

  // --- eq. (2): every transaction on exactly one site in range -----------
  int unassigned = 0;
  for (int t = 0; t < p.num_transactions(); ++t) {
    const int s = p.SiteOfTransaction(t);
    if (s < 0 || s >= p.num_sites()) ++unassigned;
  }
  check(unassigned == 0,
        StrFormat("%d transactions are not assigned to a site in range",
                  unassigned));

  // --- eq. (3): every attribute placed; exactly once when disjoint -------
  int unplaced = 0;
  int duplicated = 0;
  for (int a = 0; a < p.num_attributes(); ++a) {
    const int replicas = p.ReplicaCount(a);
    if (replicas < 1) ++unplaced;
    if (!request.allow_replication && replicas > 1) ++duplicated;
  }
  check(unplaced == 0,
        StrFormat("%d attributes are not placed on any site", unplaced));
  check(duplicated == 0,
        StrFormat("%d attributes appear in more than one fragment but "
                  "replication is disabled",
                  duplicated));

  // --- eq. (7) linking structure: reads are servable locally -------------
  int remote_reads = 0;
  for (int t = 0; t < p.num_transactions(); ++t) {
    const int s = p.SiteOfTransaction(t);
    if (s < 0 || s >= p.num_sites()) continue;  // counted above
    for (int a : instance.ReadSetOfTransaction(t)) {
      if (!p.HasAttribute(a, s)) ++remote_reads;
    }
  }
  check(remote_reads == 0,
        StrFormat("%d read attributes are missing from their transaction's "
                  "site (single-sitedness violated)",
                  remote_reads));
  if (!report.failures.empty()) {
    // An infeasible layout makes the cost and bound audits meaningless.
    report.certified = false;
    return report;
  }

  // --- independent cost model --------------------------------------------
  StatusOr<std::shared_ptr<const CostCoefficients>> model =
      CostModelRegistry::Global().Build(BorrowInstance(instance),
                                        request.cost, request.cost_model);
  ++report.checks_run;
  if (!model.ok()) {
    report.failures.push_back("could not rebuild cost model '" +
                              request.cost_model.backend +
                              "': " + model.status().message());
    report.certified = false;
    return report;
  }

  // --- objective (4), recomputed in long double --------------------------
  const long double recomputed = RecomputeObjective(**model, p);
  report.recomputed_cost = static_cast<double>(recomputed);
  const double cost_tol =
      options_.cost_abs_tol +
      options_.cost_rel_tol * std::abs(report.recomputed_cost);
  check(std::abs(response.result.cost - report.recomputed_cost) <= cost_tol,
        StrFormat("reported cost %.9g disagrees with the long-double "
                  "recomputation %.9g (tolerance %.3g)",
                  response.result.cost, report.recomputed_cost, cost_tol));

  // --- first-principles breakdown (A_R + A_W + p·B) ----------------------
  const CostBreakdown breakdown = (*model)->Breakdown(p);
  const double physics_tol =
      options_.physics_rel_tol * (1.0 + std::abs(report.recomputed_cost));
  check(std::abs(breakdown.total - report.recomputed_cost) <= physics_tol,
        StrFormat("first-principles breakdown %.9g disagrees with the "
                  "coefficient recomputation %.9g",
                  breakdown.total, report.recomputed_cost));
  check(std::abs(response.result.breakdown.total - breakdown.total) <=
            physics_tol,
        StrFormat("reported breakdown total %.9g disagrees with the "
                  "recomputed breakdown %.9g",
                  response.result.breakdown.total, breakdown.total));

  // --- eq. (5) load rows --------------------------------------------------
  const std::vector<std::vector<int>> by_site = TransactionsBySite(p);
  for (int s = 0; s < p.num_sites(); ++s) {
    const double recomputed_load =
        static_cast<double>(RecomputeSiteLoad(**model, p, by_site[s], s));
    const double reported_load = (*model)->SiteLoad(p, s);
    check(std::abs(reported_load - recomputed_load) <=
              options_.physics_rel_tol * (1.0 + std::abs(recomputed_load)),
          StrFormat("site %d load %.9g disagrees with the long-double "
                    "recomputation %.9g",
                    s, reported_load, recomputed_load));
  }

  // --- baseline and headline metric --------------------------------------
  const Partitioning baseline = SingleSiteBaseline(instance, /*num_sites=*/1);
  report.recomputed_single_site_cost =
      static_cast<double>(RecomputeObjective(**model, baseline));
  const double baseline_tol =
      options_.cost_abs_tol +
      options_.cost_rel_tol * std::abs(report.recomputed_single_site_cost);
  check(std::abs(response.result.single_site_cost -
                 report.recomputed_single_site_cost) <= baseline_tol,
        StrFormat("reported single-site cost %.9g disagrees with the "
                  "recomputation %.9g",
                  response.result.single_site_cost,
                  report.recomputed_single_site_cost));
  if (report.recomputed_single_site_cost > 0) {
    const double reduction =
        100.0 * (1.0 - report.recomputed_cost /
                           report.recomputed_single_site_cost);
    check(std::abs(response.result.reduction_percent - reduction) <= 1e-6 +
              options_.physics_rel_tol * (1.0 + std::abs(reduction)),
          StrFormat("reported reduction %.6g%% disagrees with the "
                    "recomputed %.6g%%",
                    response.result.reduction_percent, reduction));
  }

  // --- Appendix-A latency exposure ---------------------------------------
  if (request.latency_penalty > 0) {
    const double latency =
        LatencyCost(instance, p, request.latency_penalty);
    check(std::abs(response.result.latency_cost - latency) <=
              options_.physics_rel_tol * (1.0 + std::abs(latency)),
          StrFormat("reported latency cost %.9g disagrees with the "
                    "recomputed %.9g",
                    response.result.latency_cost, latency));
  }

  // --- bound audit: does the claimed certificate hold up? ----------------
  if (response.result.proven_optimal) {
    // What the branch & bound minimized: eq. (6), which attribute grouping
    // preserves exactly (it only runs for additive backends), so the
    // solve-space and original-space incumbents agree — except when the
    // Appendix-A latency term is priced. The latency MIP rows let the
    // solver raise read-linearization u variables above x·y (paying extra
    // c1) to relax the psi links, so the MIP objective sits above the
    // re-evaluated cost + LatencyCost of the extracted layout and its
    // bound is not comparable here. Latency-priced proofs therefore skip
    // the numeric bound comparisons (the structural no-tree check below
    // still applies).
    const bool incumbent_exact = request.latency_penalty <= 0;
    const double incumbent = (*model)->ScalarizedObjective(p);
    const double bound_tol = options_.bound_abs_tol +
                             options_.bound_rel_tol * std::abs(incumbent);
    if (response.bnb_nodes > 0 && incumbent_exact) {
      // A dual bound above the incumbent cannot exist for a minimization:
      // the certificate is forged (or the search is numerically broken).
      check(response.best_bound <= incumbent + bound_tol,
            StrFormat("optimality certificate rejected: dual bound %.9g "
                      "exceeds the incumbent %.9g",
                      response.best_bound, incumbent));
      // Without an exhausted tree the proof must be gap-based: the bound
      // has to close to within the requested gap of the incumbent.
      if (!response.search_exhausted) {
        const double gap_room =
            request.ilp.mip_gap * std::abs(incumbent) + bound_tol;
        check(incumbent - response.best_bound <= gap_room,
              StrFormat("optimality claimed but the search was not "
                        "exhausted and the bound %.9g leaves a gap beyond "
                        "%.3g%% of the incumbent %.9g",
                        response.best_bound, 100.0 * request.ilp.mip_gap,
                        incumbent));
      }
    } else if (response.bnb_nodes == 0) {
      // No tree ran: the only valid proof is complete enumeration.
      check(response.search_exhausted,
            "optimality claimed without a branch & bound tree or an "
            "exhausted enumeration");
    }
  }

  // Audit failures recorded by the LP core invalidate the certificate too:
  // a drifted factorization taints every bound the tree computed.
  check(response.lp_stats.audit_failures == 0,
        StrFormat("%ld LP invariant audits failed during the solve",
                  response.lp_stats.audit_failures));

  report.certified = report.failures.empty();
  return report;
}

Status CertifyResponse(const Instance& instance, const AdviseRequest& request,
                       const AdviseResponse& response) {
  const SolutionCertifier certifier;
  const CertificationReport report =
      certifier.Certify(instance, request, response);
  if (report.certified) return Status::Ok();
  return InternalError("solution failed certification: " + report.Summary());
}

}  // namespace vpart
