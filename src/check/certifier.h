#ifndef VPART_CHECK_CERTIFIER_H_
#define VPART_CHECK_CERTIFIER_H_

#include <string>
#include <vector>

#include "api/advise.h"
#include "util/status.h"
#include "workload/instance.h"

namespace vpart {

/// Tolerances of the certifier's numeric cross-checks. The defaults are
/// far above the double-vs-long-double disagreement of a correct answer
/// (relative 1e-12-ish on the eq.-(7) models) and far below anything a
/// genuinely wrong solution produces.
struct CertifierOptions {
  /// Reported cost vs the long-double recomputation through c1/c2.
  double cost_rel_tol = 1e-9;
  double cost_abs_tol = 1e-6;
  /// First-principles paths (Breakdown, SiteLoad) vs the coefficient
  /// tables: independent float pipelines, so a looser band.
  double physics_rel_tol = 1e-6;
  /// Bound audit: how far a dual bound may sit above the incumbent before
  /// the optimality certificate is declared forged.
  double bound_rel_tol = 1e-6;
  double bound_abs_tol = 1e-5;
};

/// Outcome of one certification: every failed check as a human-readable
/// sentence, plus the recomputed reference values.
struct CertificationReport {
  bool certified = false;
  long checks_run = 0;
  std::vector<std::string> failures;
  /// Objective (4) re-accumulated in long double through the certifier's
  /// own cost model (site-major order, independent of Objective()'s loop).
  double recomputed_cost = 0.0;
  double recomputed_single_site_cost = 0.0;

  /// "certified (N checks)" or "REJECTED: <failure>; <failure>; ...".
  std::string Summary() const;
};

/// Independent re-verification of an AdviseResponse against its Instance.
/// The certifier shares no state with the solver path: it rebuilds the cost
/// model from the registry, re-derives the paper's feasibility rows
/// (eq. (2)-(3) assignment/placement structure, the φ read-locality
/// implication behind eq. (7)'s linking rows, disjointness when replication
/// is off), recomputes objective (4), the eq.-(5) site-load rows, the
/// breakdown, the baseline, and the latency exposure from scratch, and
/// audits any optimality certificate against the reported dual bound and
/// proof flags (`search_exhausted`, `pruned_by_external_bound`): a claimed
/// proof with bound > incumbent, or with neither an exhausted search nor a
/// gap-closing bound, is rejected.
///
/// Certification is read-only and thread-compatible: one instance may
/// certify concurrently from multiple threads.
class SolutionCertifier {
 public:
  explicit SolutionCertifier(CertifierOptions options = {});

  /// Re-verifies `response` (produced for `request`) against `instance` —
  /// the *original* instance, before any attribute grouping. Reports every
  /// violated check rather than stopping at the first.
  CertificationReport Certify(const Instance& instance,
                              const AdviseRequest& request,
                              const AdviseResponse& response) const;

 private:
  CertifierOptions options_;
};

/// Convenience wrapper for post-solve gates: Ok when the response
/// certifies, InternalError listing every failure otherwise.
Status CertifyResponse(const Instance& instance, const AdviseRequest& request,
                       const AdviseResponse& response);

}  // namespace vpart

#endif  // VPART_CHECK_CERTIFIER_H_
