#include "check/audit.h"

namespace vpart {

const char* AuditLevelName(AuditLevel level) {
  switch (level) {
    case AuditLevel::kOff:
      return "off";
    case AuditLevel::kCheap:
      return "cheap";
    case AuditLevel::kFull:
      return "full";
  }
  return "off";
}

bool ParseAuditLevel(const std::string& text, AuditLevel* out) {
  if (text == "off") {
    *out = AuditLevel::kOff;
  } else if (text == "cheap") {
    *out = AuditLevel::kCheap;
  } else if (text == "full") {
    *out = AuditLevel::kFull;
  } else {
    return false;
  }
  return true;
}

}  // namespace vpart
