#ifndef VPART_CHECK_INVARIANTS_H_
#define VPART_CHECK_INVARIANTS_H_

#include <vector>

namespace vpart {

/// Low-level numeric invariants shared by the LP auditor (lp/simplex.cc)
/// and the tests. These operate on plain CSC arrays so the check layer
/// needs nothing from lp/ — the solver hands over its internal state.

/// ‖A·x − b‖∞ over a CSC matrix (col_start, row_index, value) with
/// `num_rows` rows: the row-activity residual of the solver's current
/// iterate. For a consistent simplex state (basic values freshly computed
/// through the factorization) this is at rounding level; growth signals a
/// drifted LU or an incrementally-updated iterate that no longer satisfies
/// the constraints it claims to.
double RowActivityResidualInf(int num_rows, const std::vector<int>& col_start,
                              const std::vector<int>& row_index,
                              const std::vector<double>& value,
                              const std::vector<double>& x,
                              const std::vector<double>& rhs);

/// True when every entry is finite and strictly positive — the devex /
/// dual-steepest-edge weight invariant (weights start at 1 and only grow
/// between resets; zero, negative, or non-finite weights mean the update
/// formula was fed garbage).
bool AllFinitePositive(const std::vector<double>& values);

/// Basis-header consistency: every row's basic column is in [0, num_cols)
/// and no column is basic in two rows. `num_cols` is the struct+logical
/// column count (artificials are never part of a reusable basis).
bool BasisHeaderConsistent(const std::vector<int>& basic_of_row,
                           int num_cols);

}  // namespace vpart

#endif  // VPART_CHECK_INVARIANTS_H_
