#include "check/invariants.h"

#include <cmath>
#include <cstdlib>

namespace vpart {

double RowActivityResidualInf(int num_rows, const std::vector<int>& col_start,
                              const std::vector<int>& row_index,
                              const std::vector<double>& value,
                              const std::vector<double>& x,
                              const std::vector<double>& rhs) {
  std::vector<double> activity(static_cast<size_t>(num_rows), 0.0);
  const size_t num_cols = col_start.empty() ? 0 : col_start.size() - 1;
  for (size_t j = 0; j < num_cols && j < x.size(); ++j) {
    const double xj = x[j];
    if (xj == 0.0) continue;
    for (int k = col_start[j]; k < col_start[j + 1]; ++k) {
      activity[static_cast<size_t>(row_index[static_cast<size_t>(k)])] +=
          value[static_cast<size_t>(k)] * xj;
    }
  }
  double residual = 0.0;
  for (int i = 0; i < num_rows; ++i) {
    const double r =
        std::abs(activity[static_cast<size_t>(i)] - rhs[static_cast<size_t>(i)]);
    if (!(r <= residual)) residual = r;  // NaN propagates to the max
  }
  return residual;
}

bool AllFinitePositive(const std::vector<double>& values) {
  for (double v : values) {
    if (!std::isfinite(v) || v <= 0.0) return false;
  }
  return true;
}

bool BasisHeaderConsistent(const std::vector<int>& basic_of_row,
                           int num_cols) {
  std::vector<char> seen(static_cast<size_t>(num_cols), 0);
  for (int col : basic_of_row) {
    if (col < 0 || col >= num_cols) return false;
    if (seen[static_cast<size_t>(col)]) return false;
    seen[static_cast<size_t>(col)] = 1;
  }
  return true;
}

}  // namespace vpart
