#ifndef VPART_CHECK_AUDIT_H_
#define VPART_CHECK_AUDIT_H_

#include <string>

namespace vpart {

/// How much self-checking the LP core performs while it solves. The audits
/// are observational: a failed check increments LpSolveStats::audit_failures
/// (surfaced as telemetry.mip.audit_failures) and logs a warning, but never
/// changes the solve path — the point is to catch a silently drifted
/// factorization or a corrupted basis snapshot in telemetry before it
/// corrupts an "optimal" answer, not to mask it with a retry.
///
///   kOff    no audits (the default; zero overhead, telemetry unchanged)
///   kCheap  basis-header consistency on LoadBasis + a residual check
///           ‖A·x − b‖∞ after every refactorization
///   kFull   kCheap plus a residual check every
///           SimplexOptions::audit_ft_interval Forrest–Tomlin updates and
///           devex / dual-steepest-edge weight positivity at solve end
enum class AuditLevel { kOff, kCheap, kFull };

/// "off" / "cheap" / "full".
const char* AuditLevelName(AuditLevel level);

/// Parses "off" / "cheap" / "full"; returns false (leaving *out untouched)
/// on anything else.
bool ParseAuditLevel(const std::string& text, AuditLevel* out);

}  // namespace vpart

#endif  // VPART_CHECK_AUDIT_H_
